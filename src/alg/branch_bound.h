// Branch-and-bound optimizer for Problem 3: depth-first search over the
// left-end connection order with (a) per-connection admissible lower
// bounds (the cheapest feasible track, conflicts ignored) and (b)
// cheapest-first child ordering. Exact like dp_route_optimal, but with
// memory O(M) instead of the assignment graph — the right tool when the
// frontier count explodes (many tracks, many types) yet the weight
// structure prunes well.
#pragma once

#include <cstdint>

#include "alg/result.h"
#include "core/channel.h"
#include "core/channel_index.h"
#include "core/connection.h"
#include "core/weights.h"
#include "harness/budget.h"

namespace segroute::alg {

struct BranchBoundOptions {
  int max_segments = 0;                    // K-segment limit (0 = unlimited)
  std::uint64_t max_nodes = 50'000'000;    // search-tree safety valve

  /// Resource bounds checked once per expanded search node; exhaustion
  /// behaves like max_nodes (anytime: best-so-far if one was found, else
  /// FailureKind::kBudgetExhausted).
  harness::Budget budget;

  /// Prebuilt index over the channel being routed (must match it): O(1)
  /// segments_spanned in child generation. Results are bit-identical
  /// with and without it.
  const ChannelIndex* index = nullptr;
};

/// Finds a minimum-total-weight routing (or proves none exists).
/// stats.iterations counts expanded search nodes. Exceeding max_nodes or
/// the budget returns the best routing found so far with success only if
/// complete (note explains; failure classifies).
RouteResult branch_bound_route(const SegmentedChannel& ch,
                               const ConnectionSet& cs, const WeightFn& w,
                               const BranchBoundOptions& opts = {});

}  // namespace segroute::alg
