// Common result type returned by every router in segroute::alg.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/routing.h"

namespace segroute::alg {

/// Search/solve statistics; fields are filled by the routers that have
/// something meaningful to report and left at defaults otherwise.
struct RouteStats {
  /// DP routers: number of assignment-graph nodes per level (level i =
  /// frontiers after routing the first i connections).
  std::vector<std::size_t> nodes_per_level;
  /// DP routers: total nodes in the assignment graph.
  std::uint64_t total_nodes = 0;
  /// DP routers: maximum nodes on any single level (the paper's L).
  std::size_t max_level_nodes = 0;
  /// LP router: simplex iterations; exhaustive router: branches explored.
  std::uint64_t iterations = 0;
  /// LP router: value of the LP relaxation objective.
  double lp_objective = 0.0;
  /// LP router: true if the plain relaxation was already integral.
  bool lp_integral = false;
  /// LP router: number of fix-and-resolve rounding passes used.
  int rounding_passes = 0;
};

/// Outcome of a routing attempt. `success` means a complete valid routing
/// was produced; `routing` is then complete. On failure `routing` may hold
/// a partial assignment (router-specific) and `note` says what failed.
struct RouteResult {
  bool success = false;
  Routing routing;
  double weight = 0.0;  // total weight for optimizing routers, else 0
  std::string note;
  RouteStats stats;

  explicit operator bool() const { return success; }
};

}  // namespace segroute::alg
