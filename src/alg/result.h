// Common result type returned by every router in segroute::alg.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/routing.h"

namespace segroute::alg {

/// Structured failure taxonomy shared by every router. Replaces
/// string-matching on RouteResult::note: callers branch on this enum,
/// the note stays human-readable detail.
enum class FailureKind {
  /// Success — no failure.
  kNone = 0,
  /// Malformed input (e.g. connections extend past the channel width, or
  /// a precondition such as greedy2track's <=2-segments-per-track does
  /// not hold).
  kInvalidInput,
  /// No routing was found. This is a *proof* of infeasibility only when
  /// the router is exact for the posed problem and its search completed
  /// (dp, exhaustive, branch_bound, greedy1/match1 for K=1, greedy2track
  /// and left_edge on their special channels); for the heuristics (lp,
  /// anneal) it means "gave up", except where the note says the LP bound
  /// itself proves infeasibility.
  kInfeasible,
  /// A Budget bound (deadline, node/iteration cap, cancellation) or a
  /// legacy safety valve (max_total_nodes, max_nodes, max_branches)
  /// stopped the search before an answer was established.
  kBudgetExhausted,
  /// A produced routing failed independent re-verification (set by
  /// harness::robust_route when harness::RouteVerifier rejects a
  /// candidate; routers themselves never set this).
  kVerificationFailed,
  /// An internal invariant broke — always a bug in this library.
  kInternal,
};

/// Name of a FailureKind value, for notes and logs.
inline const char* to_string(FailureKind k) {
  switch (k) {
    case FailureKind::kNone:
      return "none";
    case FailureKind::kInvalidInput:
      return "invalid-input";
    case FailureKind::kInfeasible:
      return "infeasible";
    case FailureKind::kBudgetExhausted:
      return "budget-exhausted";
    case FailureKind::kVerificationFailed:
      return "verification-failed";
    case FailureKind::kInternal:
      return "internal";
  }
  return "?";
}

/// Search/solve statistics; fields are filled by the routers that have
/// something meaningful to report and left at defaults otherwise.
struct RouteStats {
  /// DP routers: number of assignment-graph nodes per level (level i =
  /// frontiers after routing the first i connections).
  std::vector<std::size_t> nodes_per_level;
  /// DP routers: total nodes in the assignment graph.
  std::uint64_t total_nodes = 0;
  /// DP routers: maximum nodes on any single level (the paper's L).
  std::size_t max_level_nodes = 0;
  /// LP router: simplex iterations; exhaustive router: branches explored.
  std::uint64_t iterations = 0;
  /// LP router: value of the LP relaxation objective.
  double lp_objective = 0.0;
  /// LP router: true if the plain relaxation was already integral.
  bool lp_integral = false;
  /// LP router: number of fix-and-resolve rounding passes used.
  int rounding_passes = 0;
};

/// Per-connection failure record for partial routings: which connection
/// stayed unrouted and why. kInfeasible here means "the router could not
/// place it given what it had already committed" — a proof of per-
/// connection infeasibility only if the router says so in its note.
struct ConnFailure {
  ConnId conn = 0;
  FailureKind kind = FailureKind::kInfeasible;
};

/// Outcome of a routing attempt. `success` means a complete valid routing
/// was produced; `routing` is then complete. On failure `routing` may hold
/// a partial assignment (router-specific), `failure` classifies what went
/// wrong, and `note` carries the human-readable detail.
///
/// Partial-routing contract (the "partial" router and any future
/// best-effort strategy): `partial == true` means `routing` holds a valid
/// routing of a subset of the connections (never corrupt, independently
/// verifiable with VerifyOptions::require_complete = false) and
/// `unrouted` enumerates every unassigned connection with a per-
/// connection FailureKind. `success` stays false unless the subset is
/// everything; all-or-nothing consumers keep working unchanged.
struct RouteResult {
  bool success = false;
  Routing routing;
  double weight = 0.0;  // total weight for optimizing routers, else 0
  FailureKind failure = FailureKind::kNone;  // kNone iff success
  std::string note;
  RouteStats stats;

  // Partial-routing contract (see above).
  bool partial = false;
  std::vector<ConnFailure> unrouted;

  explicit operator bool() const { return success; }

  /// Failure helper: classifies and annotates in one step.
  void fail(FailureKind kind, std::string why) {
    success = false;
    failure = kind;
    note = std::move(why);
  }
};

}  // namespace segroute::alg
