// Left-edge routing (Section IV-A, "Identically Segmented Tracks"; also
// the conventional-channel baseline of Fig. 2(b)).
#pragma once

#include "alg/result.h"
#include "core/channel.h"
#include "core/channel_index.h"
#include "core/connection.h"

namespace segroute::alg {

/// Routes in an identically segmented channel with the left-edge
/// algorithm: process connections by increasing left end, assign each to
/// the first track where none of the segments it would occupy is taken.
/// Solves Problems 1 and 2 for this special case in O(M*T) track scans.
/// If `max_segments` > 0, assignments that would occupy more segments are
/// not considered (K-segment routing).
///
/// Requires ch.identically_segmented(): the algorithm runs on any
/// channel, but its exactness guarantee requires identical tracks, so a
/// mixed channel is rejected with FailureKind::kInvalidInput.
///
/// `ctx` optionally supplies a prebuilt ChannelIndex and a reusable
/// Occupancy (reset here); results are bit-identical with and without it.
RouteResult left_edge_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                            int max_segments = 0,
                            const RouteContext& ctx = {});

/// Conventional (freely customized) channel routing baseline: the number
/// of tracks the left-edge algorithm needs with no segmentation
/// constraints, which — absent vertical constraints — equals the density.
/// Returns the per-connection track assignment using exactly density(cs)
/// tracks (Fig. 2(b)).
RouteResult left_edge_unconstrained(const ConnectionSet& cs);

/// Minimum number of tracks for an unconstrained channel == density.
int unconstrained_tracks_needed(const ConnectionSet& cs);

}  // namespace segroute::alg
