// The router registry: every routing strategy in the library as a named
// entry behind the uniform core/router.h contract.
//
// Portfolio and parallel FPGA routers get their leverage from treating
// routers as interchangeable strategies behind one interface; this
// registry is that shape for segroute. Consumers (robust_route cascades,
// the batch engine, capacity search, benches, tests) select routers by
// name, query capability flags instead of hard-coding per-router
// knowledge, and dispatch through one non-throwing entry point. Adding a
// backend is one RouterEntry in registry.cpp — no consumer changes.
#pragma once

#include <string_view>
#include <vector>

#include "alg/result.h"
#include "core/router.h"
#include "io/table.h"

namespace segroute::alg {

/// One registered router. `name` and the descriptive strings have static
/// storage duration (usable directly as span names/tags). `route` never
/// throws on invalid input: malformed requests — and requests outside
/// the capability envelope — come back as kInvalidInput.
struct RouterEntry {
  const char* name;        // registry key, e.g. "dp"
  const char* problem;     // paper problem solved + section
  const char* complexity;  // headline bound or "heuristic"
  RouterCaps caps;
  RouteResult (*route)(const RouteRequest&);
};

/// All registered routers, in stable documentation order. The reference
/// list for "run everything" sweeps (benches, property tests).
const std::vector<RouterEntry>& registry();

/// Looks up a router by name; nullptr if unknown.
const RouterEntry* find_router(std::string_view name);

/// Dispatches a request to `e` with the uniform pre-checks applied
/// first: null channel/connections, negative K, a weight the router
/// does not support (or a missing one it requires), and channel shapes
/// outside its capability envelope (needs_identical_tracks,
/// needs_le2_segments_per_track) all return kInvalidInput without
/// invoking the router. Emits one "alg.route" span tagged
/// router=<name>. Never throws on invalid input.
RouteResult route(const RouterEntry& e, const RouteRequest& req);

/// By-name dispatch; an unknown name is kInvalidInput, not a throw.
RouteResult route(std::string_view name, const RouteRequest& req);

/// The registry rendered as an io::Table (name, problem, exact, optimal,
/// complexity) — the README's router table is generated from this.
io::Table capability_table();

}  // namespace segroute::alg
