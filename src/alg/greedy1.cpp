#include "alg/greedy1.h"

#include <optional>

#include "core/routing.h"
#include "obs/instrument.h"

namespace segroute::alg {

RouteResult greedy1_route_traced(const SegmentedChannel& ch,
                                 const ConnectionSet& cs, Greedy1Trace* trace,
                                 TieBreak tie, const RouteContext& ctx) {
  RouteResult res;
  res.routing = Routing(cs.size());
  SEGROUTE_SPAN(g1_span, "alg.greedy1_route");
  if (trace) {
    trace->segment_of.assign(static_cast<std::size_t>(cs.size()), -1);
  }
  if (cs.max_right() > ch.width()) {
    res.fail(FailureKind::kInvalidInput, "connections exceed channel width");
    SEGROUTE_SPAN_TAG(g1_span, "outcome", to_string(res.failure));
    return res;
  }
  // Candidate tracks rejected (multi-segment span or occupied), flushed
  // once at exit.
  std::uint64_t rejected = 0;
  const ChannelIndex* idx = ctx.index;
  std::optional<Occupancy> local_occ;
  Occupancy& occ = ctx.occupancy ? *ctx.occupancy : local_occ.emplace(ch);
  if (ctx.occupancy) occ.reset();
  for (ConnId i : cs.sorted_by_left()) {
    const Connection& c = cs[i];
    TrackId best = kNoTrack;
    SegId best_seg = -1;
    Column best_right = 0;
    for (TrackId t = 0; t < ch.num_tracks(); ++t) {
      SegId a, b;
      if (idx) {
        a = idx->segment_at(t, c.left);
        b = idx->segment_at(t, c.right);
      } else {
        const auto [sa, sb] = ch.track(t).span(c.left, c.right);
        a = sa;
        b = sb;
      }
      if (a != b) {  // needs more than one segment
        ++rejected;
        continue;
      }
      if (occ.occupant(t, a) != kNoConn) {  // already taken
        ++rejected;
        continue;
      }
      const Column r = idx ? idx->seg_right(t, a) : ch.track(t).segment(a).right;
      const bool better =
          best == kNoTrack || r < best_right ||
          (r == best_right && tie == TieBreak::HighestTrack);
      if (better) {
        best = t;
        best_seg = a;
        best_right = r;
      }
    }
    if (best == kNoTrack) {
      res.fail(FailureKind::kInfeasible,
               "no single unoccupied segment can hold connection " +
                   std::to_string(i));
      SEGROUTE_COUNT("greedy1.candidates_rejected", rejected);
      SEGROUTE_SPAN_TAG(g1_span, "outcome", to_string(res.failure));
      return res;
    }
    occ.place(best, c.left, c.right, i);
    res.routing.assign(i, best);
    if (trace) trace->segment_of[static_cast<std::size_t>(i)] = best_seg;
  }
  res.success = true;
  SEGROUTE_COUNT("greedy1.candidates_rejected", rejected);
  SEGROUTE_COUNT("greedy1.placements", cs.size());
  SEGROUTE_SPAN_TAG(g1_span, "outcome", "success");
  return res;
}

RouteResult greedy1_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                          TieBreak tie, const RouteContext& ctx) {
  return greedy1_route_traced(ch, cs, nullptr, tie, ctx);
}

}  // namespace segroute::alg
