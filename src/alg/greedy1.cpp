#include "alg/greedy1.h"

#include "core/routing.h"

namespace segroute::alg {

RouteResult greedy1_route_traced(const SegmentedChannel& ch,
                                 const ConnectionSet& cs, Greedy1Trace* trace,
                                 TieBreak tie) {
  RouteResult res;
  res.routing = Routing(cs.size());
  if (trace) {
    trace->segment_of.assign(static_cast<std::size_t>(cs.size()), -1);
  }
  if (cs.max_right() > ch.width()) {
    res.fail(FailureKind::kInvalidInput, "connections exceed channel width");
    return res;
  }
  Occupancy occ(ch);
  for (ConnId i : cs.sorted_by_left()) {
    const Connection& c = cs[i];
    TrackId best = kNoTrack;
    SegId best_seg = -1;
    Column best_right = 0;
    for (TrackId t = 0; t < ch.num_tracks(); ++t) {
      const Track& tr = ch.track(t);
      auto [a, b] = tr.span(c.left, c.right);
      if (a != b) continue;                      // needs more than one segment
      if (occ.occupant(t, a) != kNoConn) continue;  // already taken
      const Column r = tr.segment(a).right;
      const bool better =
          best == kNoTrack || r < best_right ||
          (r == best_right && tie == TieBreak::HighestTrack);
      if (better) {
        best = t;
        best_seg = a;
        best_right = r;
      }
    }
    if (best == kNoTrack) {
      res.fail(FailureKind::kInfeasible,
               "no single unoccupied segment can hold connection " +
                   std::to_string(i));
      return res;
    }
    occ.place(best, c.left, c.right, i);
    res.routing.assign(i, best);
    if (trace) trace->segment_of[static_cast<std::size_t>(i)] = best_seg;
  }
  res.success = true;
  return res;
}

RouteResult greedy1_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                          TieBreak tie) {
  return greedy1_route_traced(ch, cs, nullptr, tie);
}

}  // namespace segroute::alg
