#include "alg/partial.h"

#include <optional>
#include <string>

#include "core/routing.h"
#include "obs/instrument.h"

namespace segroute::alg {

RouteResult partial_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                          const PartialOptions& opts, const RouteContext& ctx) {
  SEGROUTE_SPAN(span, "alg.partial");
  RouteResult res;
  res.routing = Routing(cs.size());
  if (opts.max_segments < 0) {
    res.fail(FailureKind::kInvalidInput, "partial: negative max_segments");
    return res;
  }

  const TrackId T = ch.num_tracks();
  const Column W = ch.width();

  // Borrowed workspace when the engine provides one, a local otherwise.
  std::optional<Occupancy> local;
  Occupancy* occ = ctx.occupancy;
  if (occ) {
    occ->rebind(ch);  // clears; reuses rows when the shape matches
  } else {
    local.emplace(ch);
    occ = &*local;
  }

  harness::BudgetMeter meter(opts.budget);
  int budget_dead_from = -1;

  for (ConnId i = 0; i < cs.size(); ++i) {
    if (!meter.tick()) {
      budget_dead_from = i;
      break;
    }
    const Connection& c = cs[i];
    if (c.left < 1 || c.right > W || c.left > c.right) {
      res.unrouted.push_back({i, FailureKind::kInvalidInput});
      continue;
    }
    // Best fit: fewest segments spanned, ties to the lowest track id
    // (ascending scan with strict <).
    TrackId best = kNoTrack;
    int best_spans = 0;
    for (TrackId t = 0; t < T; ++t) {
      const int spans = ctx.index
                            ? ctx.index->segments_spanned(t, c.left, c.right)
                            : ch.track(t).segments_spanned(c.left, c.right);
      if (opts.max_segments > 0 && spans > opts.max_segments) continue;
      if (best != kNoTrack && spans >= best_spans) continue;
      if (!occ->fits(t, c.left, c.right)) continue;
      best = t;
      best_spans = spans;
    }
    if (best == kNoTrack) {
      res.unrouted.push_back({i, FailureKind::kInfeasible});
      continue;
    }
    occ->place(best, c.left, c.right, i);
    res.routing.assign(i, best);
  }
  if (budget_dead_from >= 0) {
    for (ConnId i = budget_dead_from; i < cs.size(); ++i) {
      res.unrouted.push_back({i, FailureKind::kBudgetExhausted});
    }
  }

  if (res.unrouted.empty()) {
    res.success = true;
    return res;
  }
  res.partial = true;  // the subset contract holds even when it is empty
  res.failure = budget_dead_from >= 0 ? FailureKind::kBudgetExhausted
                                      : FailureKind::kInfeasible;
  res.note = "partial: routed " + std::to_string(res.routing.num_assigned()) +
             " of " + std::to_string(cs.size()) + " connections" +
             (budget_dead_from >= 0 ? " (" + meter.reason() + ")" : "");
  SEGROUTE_COUNT("partial.unrouted", res.unrouted.size());
  return res;
}

}  // namespace segroute::alg
