// Simulated-annealing router for instance sizes where the exact DP's
// frontier count explodes (many tracks segmented many different ways).
// State: every connection assigned to some track, conflicts allowed;
// cost: number of segment over-subscriptions; moves: reassign one
// connection to another track. Reaches cost 0 == a valid routing.
//
// This is a *heuristic*: it can fail on routable instances (rarely, with
// enough restarts) and proves nothing on unroutable ones — tests compare
// it against the exact routers on small instances and against the LP
// heuristic at scale.
#pragma once

#include <cstdint>
#include <random>

#include "alg/result.h"
#include "core/channel.h"
#include "core/connection.h"
#include "harness/budget.h"

namespace segroute::alg {

struct AnnealRouteOptions {
  int max_segments = 0;        // K-segment limit (0 = unlimited)
  int iterations = 200000;     // per restart
  int restarts = 3;
  double t_start = 2.0;
  double t_end = 0.01;
  std::uint64_t seed = 0xa11ea1u;

  /// Resource bounds checked once per attempted move; exhaustion yields
  /// FailureKind::kBudgetExhausted (no routing was reached in budget).
  harness::Budget budget;
};

/// Anneals toward a conflict-free assignment. stats.iterations counts
/// total moves tried across restarts.
RouteResult anneal_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                         const AnnealRouteOptions& opts = {});

}  // namespace segroute::alg
