#include "alg/registry.h"

#include <string>

#include "alg/anneal_route.h"
#include "alg/branch_bound.h"
#include "alg/delta.h"
#include "alg/dp.h"
#include "alg/exhaustive.h"
#include "alg/greedy1.h"
#include "alg/greedy2track.h"
#include "alg/left_edge.h"
#include "alg/lp_route.h"
#include "alg/match1.h"
#include "alg/online.h"
#include "alg/partial.h"
#include "core/routing.h"
#include "net/express.h"
#include "obs/instrument.h"

namespace segroute::alg {

namespace {

RouteResult route_dp(const RouteRequest& rq) {
  DpOptions o;
  o.max_segments = rq.options.max_segments;
  o.weight = rq.options.weight;
  o.canonicalize_types = rq.options.param_bool("canonicalize_types", true);
  o.max_total_nodes = static_cast<std::uint64_t>(
      rq.options.param_int("max_total_nodes", 20'000'000));
  o.budget = rq.budget;
  o.index = rq.context.index;
  o.workspace = rq.dp_workspace;
  return dp_route(*rq.channel, *rq.connections, o);
}

RouteResult route_greedy1(const RouteRequest& rq) {
  const std::string tb = rq.options.param_str("tie_break", "lowest");
  TieBreak tie;
  if (tb == "lowest") {
    tie = TieBreak::LowestTrack;
  } else if (tb == "highest") {
    tie = TieBreak::HighestTrack;
  } else {
    RouteResult res;
    res.routing = Routing(rq.connections->size());
    res.fail(FailureKind::kInvalidInput,
             "greedy1: unknown tie_break \"" + tb + "\"");
    return res;
  }
  return greedy1_route(*rq.channel, *rq.connections, tie, rq.context);
}

RouteResult route_match1(const RouteRequest& rq) {
  if (rq.options.weight) {
    return match1_route_optimal(*rq.channel, *rq.connections,
                                *rq.options.weight, rq.context);
  }
  return match1_route(*rq.channel, *rq.connections, rq.context);
}

RouteResult route_greedy2track(const RouteRequest& rq) {
  return greedy2track_route(*rq.channel, *rq.connections);
}

RouteResult route_left_edge(const RouteRequest& rq) {
  return left_edge_route(*rq.channel, *rq.connections,
                         rq.options.max_segments, rq.context);
}

RouteResult route_lp(const RouteRequest& rq) {
  LpRouteOptions o;
  o.max_segments = rq.options.max_segments;
  o.max_rounding_passes =
      static_cast<int>(rq.options.param_int("max_rounding_passes", 64));
  o.tolerance = rq.options.param_double("tolerance", 1e-6);
  o.objective_jitter = rq.options.param_double("objective_jitter", 1e-4);
  o.jitter_seed = static_cast<std::uint64_t>(
      rq.options.param_int("jitter_seed", 0x5e60e7eLL));
  o.budget = rq.budget;
  if (rq.options.weight) {
    return lp_route_optimal(*rq.channel, *rq.connections, *rq.options.weight,
                            o);
  }
  return lp_route(*rq.channel, *rq.connections, o);
}

RouteResult route_anneal(const RouteRequest& rq) {
  AnnealRouteOptions o;
  o.max_segments = rq.options.max_segments;
  o.iterations = static_cast<int>(rq.options.param_int("iterations", 200000));
  o.restarts = static_cast<int>(rq.options.param_int("restarts", 3));
  o.t_start = rq.options.param_double("t_start", 2.0);
  o.t_end = rq.options.param_double("t_end", 0.01);
  o.seed = static_cast<std::uint64_t>(rq.options.param_int("seed", 0xa11ea1LL));
  o.budget = rq.budget;
  return anneal_route(*rq.channel, *rq.connections, o);
}

RouteResult route_branch_bound(const RouteRequest& rq) {
  BranchBoundOptions o;
  o.max_segments = rq.options.max_segments;
  o.max_nodes = static_cast<std::uint64_t>(
      rq.options.param_int("max_nodes", 50'000'000));
  o.budget = rq.budget;
  o.index = rq.context.index;
  return branch_bound_route(*rq.channel, *rq.connections, *rq.options.weight,
                            o);
}

RouteResult route_exhaustive(const RouteRequest& rq) {
  ExhaustiveOptions o;
  o.max_segments = rq.options.max_segments;
  o.weight = rq.options.weight;
  o.max_branches = static_cast<std::uint64_t>(
      rq.options.param_int("max_branches", 50'000'000));
  o.budget = rq.budget;
  return exhaustive_route(*rq.channel, *rq.connections, o);
}

RouteResult route_online(const RouteRequest& rq) {
  const ConnectionSet& cs = *rq.connections;
  RouteResult res;
  res.routing = Routing(cs.size());
  const std::string policy = rq.options.param_str("policy", "best-fit");
  OnlineRouter::Policy p;
  if (policy == "best-fit") {
    p = OnlineRouter::Policy::BestFit;
  } else if (policy == "first-fit") {
    p = OnlineRouter::Policy::FirstFit;
  } else {
    res.fail(FailureKind::kInvalidInput,
             "online: unknown policy \"" + policy + "\"");
    return res;
  }
  const bool ripup = rq.options.param_bool("ripup", true);
  OnlineRouter router(*rq.channel, p, rq.options.max_segments);
  // Insert in id order: OnlineRouter hands out ids 0, 1, ... in insertion
  // order, so its ids coincide with the ConnectionSet's.
  for (ConnId i = 0; i < cs.size(); ++i) {
    const Connection& c = cs[i];
    const auto id = ripup ? router.insert_with_ripup(c.left, c.right, c.name)
                          : router.insert(c.left, c.right, c.name);
    if (!id) {
      res.fail(router.last_failure() == FailureKind::kInvalidInput
                   ? FailureKind::kInvalidInput
                   : FailureKind::kInfeasible,
               "online: connection " + std::to_string(i) + " not placed");
      return res;
    }
  }
  for (ConnId i = 0; i < cs.size(); ++i) {
    res.routing.assign(i, router.track_of(i));
  }
  res.success = true;
  return res;
}

RouteResult route_delta(const RouteRequest& rq) {
  const std::string policy = rq.options.param_str("policy", "best-fit");
  bool best_fit;
  if (policy == "best-fit") {
    best_fit = true;
  } else if (policy == "first-fit") {
    best_fit = false;
  } else {
    RouteResult res;
    res.routing = Routing(rq.connections->size());
    res.fail(FailureKind::kInvalidInput,
             "delta: unknown policy \"" + policy + "\"");
    return res;
  }
  CanonicalResult cr =
      from_scratch(*rq.channel, *rq.connections, best_fit,
                   rq.options.max_segments, rq.budget);
  if (cr.result.success && cr.result.note.empty()) {
    cr.result.note = cr.regime == CanonicalRegime::kGreedy ? "regime=greedy"
                                                           : "regime=dp";
  }
  return cr.result;
}

RouteResult route_express(const RouteRequest& rq) {
  return net::express_route(*rq.channel, *rq.connections,
                            rq.options.max_segments, rq.context);
}

RouteResult route_partial(const RouteRequest& rq) {
  PartialOptions o;
  o.max_segments = rq.options.max_segments;
  o.budget = rq.budget;
  return partial_route(*rq.channel, *rq.connections, o, rq.context);
}

/// Comma-separated registry names, for the unknown-router diagnostic.
const std::string& known_router_names() {
  static const std::string names = [] {
    std::string s;
    for (const RouterEntry& e : registry()) {
      if (!s.empty()) s += ", ";
      s += e.name;
    }
    return s;
  }();
  return names;
}

}  // namespace

const std::vector<RouterEntry>& registry() {
  static const std::vector<RouterEntry> entries = {
      {"dp", "Problems 1-3 (Sec. IV-B assignment-graph DP)",
       "O(M * L) nodes, L <= (K+1)^T",
       {.exact = true,
        .optimal = true,
        .supports_weight = true,
        .supports_k = true},
       &route_dp},
      {"greedy1", "Problem 2, K=1 (Sec. IV-A Theorem 3 greedy)", "O(M * T)",
       {.exact = true, .k1_only = true}, &route_greedy1},
      {"match1", "Problems 2-3, K=1 (Sec. IV-A bipartite matching)",
       "O(M^2 * S) Hungarian",
       {.exact = true,
        .optimal = true,
        .supports_weight = true,
        .k1_only = true},
       &route_match1},
      {"greedy2track", "Problem 1, <=2 segments/track (Sec. IV-A Theorem 4)",
       "O(M * T)", {.exact = true, .needs_le2_segments_per_track = true},
       &route_greedy2track},
      {"left_edge", "Problems 1-2, identical tracks (Sec. IV-A)", "O(M * T)",
       {.exact = true, .supports_k = true, .needs_identical_tracks = true},
       &route_left_edge},
      {"lp", "Problems 1-3 heuristic (Sec. IV-C LP relaxation)",
       "heuristic (simplex)",
       {.supports_weight = true, .supports_k = true}, &route_lp},
      {"anneal", "Problems 1-2 heuristic (simulated annealing)",
       "heuristic", {.supports_k = true}, &route_anneal},
      {"branch_bound", "Problem 3 (branch-and-bound over left-end order)",
       "exponential worst case, O(M) memory",
       {.exact = true,
        .optimal = true,
        .supports_weight = true,
        .requires_weight = true,
        .supports_k = true,
        .anytime = true},
       &route_branch_bound},
      {"exhaustive", "Problems 1-3 oracle (backtracking)", "O(T^M)",
       {.exact = true,
        .optimal = true,
        .supports_weight = true,
        .supports_k = true,
        .anytime = true},
       &route_exhaustive},
      {"online", "Problems 1-2 heuristic (incremental session: insert, "
       "rip-up, delta repair)",
       "O(M * T) per insert, O(W) repair window", {.supports_k = true},
       &route_online},
      {"delta", "Problems 1-2 incremental reference (canonical greedy, "
       "DP fallback)",
       "O(M * T) greedy; DP on fallback",
       {.exact = true, .supports_k = true}, &route_delta},
      {"express", "Problems 1-2 heuristic (express-lane circuit switching)",
       "O(M * T)", {.supports_k = true}, &route_express},
      {"partial", "Problems 1-2 best-effort (maximal greedy subset)",
       "O(M * T)", {.supports_k = true, .anytime = true}, &route_partial},
  };
  return entries;
}

const RouterEntry* find_router(std::string_view name) {
  for (const RouterEntry& e : registry()) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

RouteResult route(const RouterEntry& e, const RouteRequest& req) {
  SEGROUTE_SPAN(span, "alg.route", "router", e.name);
  SEGROUTE_COUNT("registry.routes", 1);
  RouteResult res;
  if (req.channel == nullptr || req.connections == nullptr) {
    res.fail(FailureKind::kInvalidInput,
             std::string(e.name) + ": null channel or connections");
    return res;
  }
  res.routing = Routing(req.connections->size());
  if (req.options.max_segments < 0) {
    res.fail(FailureKind::kInvalidInput,
             std::string(e.name) + ": negative max_segments");
    return res;
  }
  if (req.options.weight && !e.caps.supports_weight) {
    res.fail(FailureKind::kInvalidInput,
             std::string(e.name) + ": router does not support a weight");
    return res;
  }
  if (!req.options.weight && e.caps.requires_weight) {
    res.fail(FailureKind::kInvalidInput,
             std::string(e.name) + ": router requires a weight");
    return res;
  }
  if (e.caps.needs_identical_tracks && !req.channel->identically_segmented()) {
    res.fail(FailureKind::kInvalidInput,
             std::string(e.name) + ": channel must be identically segmented");
    return res;
  }
  if (e.caps.needs_le2_segments_per_track &&
      req.channel->max_segments_per_track() > 2) {
    res.fail(FailureKind::kInvalidInput,
             std::string(e.name) +
                 ": every track must have at most two segments");
    return res;
  }
  return e.route(req);
}

RouteResult route(std::string_view name, const RouteRequest& req) {
  const RouterEntry* e = find_router(name);
  if (e == nullptr) {
    RouteResult res;
    if (req.connections != nullptr) {
      res.routing = Routing(req.connections->size());
    }
    res.fail(FailureKind::kInvalidInput,
             "unknown router \"" + std::string(name) +
                 "\" (known: " + known_router_names() + ")");
    return res;
  }
  return route(*e, req);
}

io::Table capability_table() {
  io::Table t({"router", "problem", "exact", "optimal", "K-limit",
               "complexity"});
  for (const RouterEntry& e : registry()) {
    const char* exact = e.caps.exact
                            ? (e.caps.k1_only ? "yes (K=1)" : "yes")
                            : "heuristic";
    const char* optimal =
        e.caps.optimal
            ? (e.caps.anytime ? "yes (anytime)" : "yes")
            : (e.caps.supports_weight ? "weighted, not proven" : "no");
    const char* klimit = e.caps.supports_k
                             ? "yes"
                             : (e.caps.k1_only ? "K=1 only" : "no");
    t.add_row({e.name, e.problem, exact, optimal, klimit, e.complexity});
  }
  return t;
}

}  // namespace segroute::alg
