#include "alg/left_edge.h"

#include <optional>

#include "core/routing.h"
#include "obs/instrument.h"

namespace segroute::alg {

RouteResult left_edge_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                            int max_segments, const RouteContext& ctx) {
  RouteResult res;
  res.routing = Routing(cs.size());
  SEGROUTE_SPAN(le_span, "alg.left_edge_route");
  if (!ch.identically_segmented()) {
    res.fail(FailureKind::kInvalidInput,
             "left_edge_route: channel must be identically segmented");
    SEGROUTE_SPAN_TAG(le_span, "outcome", to_string(res.failure));
    return res;
  }
  if (cs.max_right() > ch.width()) {
    res.fail(FailureKind::kInvalidInput, "connections exceed channel width");
    SEGROUTE_SPAN_TAG(le_span, "outcome", to_string(res.failure));
    return res;
  }
  const ChannelIndex* idx = ctx.index;
  std::optional<Occupancy> local_occ;
  Occupancy& occ = ctx.occupancy ? *ctx.occupancy : local_occ.emplace(ch);
  if (ctx.occupancy) occ.reset();
  std::uint64_t probes = 0;  // occupied-track placement attempts, flushed once
  for (ConnId i : cs.sorted_by_left()) {
    const Connection& c = cs[i];
    const int spanned0 =
        max_segments > 0
            ? (idx ? idx->segments_spanned(0, c.left, c.right)
                   : ch.track(0).segments_spanned(c.left, c.right))
            : 0;
    if (max_segments > 0 && spanned0 > max_segments) {
      res.fail(FailureKind::kInfeasible,
               "connection " + std::to_string(i) + " needs more than " +
                   std::to_string(max_segments) + " segments in every track");
      SEGROUTE_COUNT("left_edge.occupied_probes", probes);
      SEGROUTE_SPAN_TAG(le_span, "outcome", to_string(res.failure));
      return res;
    }
    bool placed = false;
    for (TrackId t = 0; t < ch.num_tracks(); ++t) {
      if (occ.place(t, c.left, c.right, i)) {
        res.routing.assign(i, t);
        placed = true;
        break;
      }
      ++probes;
    }
    if (!placed) {
      res.fail(FailureKind::kInfeasible,
               "no free track for connection " + std::to_string(i));
      SEGROUTE_COUNT("left_edge.occupied_probes", probes);
      SEGROUTE_SPAN_TAG(le_span, "outcome", to_string(res.failure));
      return res;
    }
  }
  res.success = true;
  SEGROUTE_COUNT("left_edge.occupied_probes", probes);
  SEGROUTE_COUNT("left_edge.placements", cs.size());
  SEGROUTE_SPAN_TAG(le_span, "outcome", "success");
  return res;
}

int unconstrained_tracks_needed(const ConnectionSet& cs) { return cs.density(); }

RouteResult left_edge_unconstrained(const ConnectionSet& cs) {
  // Classic left-edge on a freely customized channel: greedily reuse the
  // track whose last connection ends leftmost. With no vertical
  // constraints this uses exactly density(cs) tracks.
  RouteResult res;
  res.routing = Routing(cs.size());
  std::vector<Column> track_end;  // rightmost used column per track
  for (ConnId i : cs.sorted_by_left()) {
    const Connection& c = cs[i];
    TrackId best = kNoTrack;
    for (TrackId t = 0; t < static_cast<TrackId>(track_end.size()); ++t) {
      if (track_end[static_cast<std::size_t>(t)] < c.left &&
          (best == kNoTrack || track_end[static_cast<std::size_t>(t)] <
                                   track_end[static_cast<std::size_t>(best)])) {
        best = t;
      }
    }
    if (best == kNoTrack) {
      track_end.push_back(c.right);
      best = static_cast<TrackId>(track_end.size()) - 1;
    } else {
      track_end[static_cast<std::size_t>(best)] = c.right;
    }
    res.routing.assign(i, best);
  }
  res.success = true;
  return res;
}

}  // namespace segroute::alg
