// Optimal 1-segment routing by reduction to weighted bipartite matching
// (Section IV-A, Fig. 7): connections on one side, segments on the other;
// an edge where the connection fits entirely within the segment; a
// minimum-weight perfect matching is an optimal routing.
#pragma once

#include "alg/result.h"
#include "core/channel.h"
#include "core/channel_index.h"
#include "core/connection.h"
#include "core/weights.h"

namespace segroute::alg {

/// Feasibility-only 1-segment routing via maximum-cardinality matching
/// (Hopcroft–Karp). Succeeds iff a 1-segment routing exists — an
/// independent oracle for Theorem 3's greedy.
///
/// `ctx.index`, when set, supplies the flat segment tables and O(1)
/// segment lookups (otherwise both are derived per call); results are
/// bit-identical either way.
RouteResult match1_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                         const RouteContext& ctx = {});

/// Optimal 1-segment routing (Problem 3 restricted to K=1) minimizing the
/// total weight sum_i w(c_i, t(c_i)) via the Hungarian algorithm. Fails if
/// no complete 1-segment routing exists. On success `weight` holds the
/// optimal total.
RouteResult match1_route_optimal(const SegmentedChannel& ch,
                                 const ConnectionSet& cs, const WeightFn& w,
                                 const RouteContext& ctx = {});

}  // namespace segroute::alg
