#include "alg/exhaustive.h"

#include <cmath>
#include <limits>

#include "core/routing.h"

namespace segroute::alg {

namespace {

struct Search {
  const SegmentedChannel& ch;
  const ConnectionSet& cs;
  const ExhaustiveOptions& opts;
  harness::BudgetMeter meter;
  std::vector<ConnId> order;
  Occupancy occ;
  Routing current;
  Routing best;
  double best_weight = std::numeric_limits<double>::infinity();
  bool found = false;
  bool aborted = false;        // stop the DFS (first solution, or budget)
  bool out_of_budget = false;  // branch limit or Budget hit
  std::uint64_t branches = 0;

  Search(const SegmentedChannel& c, const ConnectionSet& s,
         const ExhaustiveOptions& o)
      : ch(c), cs(s), opts(o), meter(o.budget), order(s.sorted_by_left()),
        occ(c), current(s.size()), best(s.size()) {}

  void dfs(std::size_t depth, double weight_so_far) {
    if (aborted) return;
    if (++branches > opts.max_branches || !meter.tick()) {
      aborted = true;
      out_of_budget = true;
      return;
    }
    if (opts.weight && weight_so_far >= best_weight) return;  // bound
    if (depth == order.size()) {
      found = true;
      best = current;
      if (opts.weight) {
        best_weight = weight_so_far;
      } else {
        aborted = true;  // feasibility only: stop at the first solution
      }
      return;
    }
    const ConnId i = order[depth];
    const Connection& c = cs[i];
    for (TrackId t = 0; t < ch.num_tracks(); ++t) {
      if (opts.max_segments > 0 &&
          ch.track(t).segments_spanned(c.left, c.right) > opts.max_segments) {
        continue;
      }
      double w = 0.0;
      if (opts.weight) {
        w = (*opts.weight)(ch, c, t);
        if (std::isinf(w)) continue;
      }
      if (!occ.place(t, c.left, c.right, i)) continue;
      current.assign(i, t);
      dfs(depth + 1, weight_so_far + w);
      current.unassign(i);
      occ.remove(t, c.left, c.right);
      if (aborted && !opts.weight) return;
      if (aborted) return;
    }
  }
};

}  // namespace

RouteResult exhaustive_route(const SegmentedChannel& ch,
                             const ConnectionSet& cs,
                             const ExhaustiveOptions& opts) {
  RouteResult res;
  res.routing = Routing(cs.size());
  if (cs.max_right() > ch.width()) {
    res.fail(FailureKind::kInvalidInput, "connections exceed channel width");
    return res;
  }
  Search s(ch, cs, opts);
  s.dfs(0, 0.0);
  res.stats.iterations = s.branches;
  // The two historical failure modes ("branch limit exceeded" vs "no
  // routing exists") were distinguishable only by string comparison; they
  // are now distinct FailureKinds.
  if (!s.found) {
    if (s.out_of_budget) {
      res.fail(FailureKind::kBudgetExhausted,
               s.meter.exhausted() ? "budget exhausted: " + s.meter.reason()
                                   : "branch limit exceeded");
    } else {
      res.fail(FailureKind::kInfeasible, "no routing exists (search exhausted)");
    }
    return res;
  }
  res.success = true;
  res.routing = s.best;
  res.weight = opts.weight ? s.best_weight : 0.0;
  if (s.out_of_budget && opts.weight) {
    res.note = "budget exhausted: best routing found so far (may be suboptimal)";
  }
  return res;
}

}  // namespace segroute::alg
