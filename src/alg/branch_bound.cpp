#include "alg/branch_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/routing.h"
#include "obs/instrument.h"

namespace segroute::alg {

namespace {

struct Choice {
  TrackId track;
  double weight;
};

struct Search {
  const SegmentedChannel& ch;
  const ConnectionSet& cs;
  const BranchBoundOptions& opts;
  harness::BudgetMeter meter;
  std::vector<ConnId> order;
  std::vector<std::vector<Choice>> choices;  // per depth, cheapest first
  std::vector<double> suffix_bound;  // sum of per-conn minima from depth d
  Occupancy occ;
  Routing current;
  Routing best;
  double best_weight = std::numeric_limits<double>::infinity();
  bool found = false;
  bool aborted = false;
  std::uint64_t nodes = 0;
  // Pruning tallies (plain locals in the recursion, flushed once after
  // the search): subtrees cut by the suffix bound, and sorted-choice
  // scans cut short because no later child could beat the incumbent.
  std::uint64_t bound_prunes = 0;
  std::uint64_t choice_prunes = 0;

  Search(const SegmentedChannel& c, const ConnectionSet& s,
         const BranchBoundOptions& o)
      : ch(c), cs(s), opts(o), meter(o.budget), order(s.sorted_by_left()),
        occ(c), current(s.size()), best(s.size()) {}

  void dfs(std::size_t depth, double cost) {
    if (aborted) return;
    if (++nodes > opts.max_nodes || !meter.tick()) {
      aborted = true;
      return;
    }
    if (cost + suffix_bound[depth] >= best_weight) {  // bound
      ++bound_prunes;
      return;
    }
    if (depth == order.size()) {
      best = current;
      best_weight = cost;
      found = true;
      return;
    }
    const ConnId i = order[depth];
    const Connection& c = cs[i];
    for (const Choice& ch_ : choices[depth]) {
      if (cost + ch_.weight + suffix_bound[depth + 1] >= best_weight) {
        ++choice_prunes;
        break;  // choices are sorted: no later child can do better
      }
      if (!occ.place(ch_.track, c.left, c.right, i)) continue;
      current.assign(i, ch_.track);
      dfs(depth + 1, cost + ch_.weight);
      current.unassign(i);
      occ.remove(ch_.track, c.left, c.right);
      if (aborted) return;
    }
  }
};

}  // namespace

RouteResult branch_bound_route(const SegmentedChannel& ch,
                               const ConnectionSet& cs, const WeightFn& w,
                               const BranchBoundOptions& opts) {
  RouteResult res;
  res.routing = Routing(cs.size());
  SEGROUTE_SPAN(bb_span, "alg.branch_bound_route");
  if (cs.max_right() > ch.width()) {
    res.fail(FailureKind::kInvalidInput, "connections exceed channel width");
    SEGROUTE_SPAN_TAG(bb_span, "outcome", to_string(res.failure));
    return res;
  }
  if (cs.size() == 0) {
    res.success = true;
    SEGROUTE_SPAN_TAG(bb_span, "outcome", "success");
    return res;
  }

  Search s(ch, cs, opts);
  s.choices.resize(s.order.size());
  for (std::size_t d = 0; d < s.order.size(); ++d) {
    const Connection& c = cs[s.order[d]];
    auto& opt = s.choices[d];
    for (TrackId t = 0; t < ch.num_tracks(); ++t) {
      if (opts.max_segments > 0) {
        const int spanned =
            opts.index
                ? opts.index->segments_spanned(t, c.left, c.right)
                : ch.track(t).segments_spanned(c.left, c.right);
        if (spanned > opts.max_segments) continue;
      }
      const double weight = w(ch, c, t);
      if (std::isinf(weight)) continue;
      opt.push_back(Choice{t, weight});
    }
    if (opt.empty()) {
      res.fail(FailureKind::kInfeasible,
               "connection " + std::to_string(s.order[d]) +
                   " has no feasible track");
      SEGROUTE_SPAN_TAG(bb_span, "outcome", to_string(res.failure));
      return res;
    }
    std::sort(opt.begin(), opt.end(), [](const Choice& a, const Choice& b) {
      return a.weight < b.weight;
    });
  }
  // Admissible suffix bounds: sum of each remaining connection's cheapest
  // feasible assignment (ignores conflicts, so it never overestimates).
  s.suffix_bound.assign(s.order.size() + 1, 0.0);
  for (std::size_t d = s.order.size(); d-- > 0;) {
    s.suffix_bound[d] = s.suffix_bound[d + 1] + s.choices[d].front().weight;
  }

  s.dfs(0, 0.0);
  res.stats.iterations = s.nodes;
  SEGROUTE_COUNT("branch_bound.nodes", s.nodes);
  SEGROUTE_COUNT("branch_bound.bound_prunes", s.bound_prunes);
  SEGROUTE_COUNT("branch_bound.choice_prunes", s.choice_prunes);
  if (!s.found) {
    if (s.aborted) {
      res.fail(FailureKind::kBudgetExhausted,
               s.meter.exhausted()
                   ? "budget exhausted before any routing was found: " +
                         s.meter.reason()
                   : "node limit exceeded before any routing was found");
    } else {
      res.fail(FailureKind::kInfeasible, "no routing exists (search exhausted)");
    }
    SEGROUTE_SPAN_TAG(bb_span, "outcome", to_string(res.failure));
    return res;
  }
  res.success = true;
  SEGROUTE_SPAN_TAG(bb_span, "outcome", "success");
  res.routing = s.best;
  res.weight = s.best_weight;
  if (s.aborted) {
    res.note = "node limit exceeded: best routing found so far (may be "
               "suboptimal)";
  }
  return res;
}

}  // namespace segroute::alg
