// partial_route: best-effort routing of the maximal greedy subset.
//
// Every other router in src/alg/ is all-or-nothing: one unroutable
// connection and the whole instance fails. On a degraded fabric that is
// the wrong contract — a channel that lost a track can usually still
// carry most of the traffic, and the survivability layer (harness/
// robust_route, harness/chaos) wants "route what you can, tell me
// exactly what you could not" instead of a bare kInfeasible.
//
// The strategy is the deterministic greedy best-fit: connections are
// taken in id order; each is placed on the fitting track that wastes the
// fewest segments (ties to the lowest track id), or recorded in
// RouteResult::unrouted with a per-connection FailureKind when no track
// fits. Because occupancy only ever grows, a connection rejected at step
// i still has no fitting track at the end — the returned subset is
// maximal for this insertion order (no recorded kInfeasible connection
// can be added to the final routing).
//
// Per-connection kinds:
//  - kInvalidInput: the span lies outside the channel (1..width);
//  - kInfeasible: no track fits under the K-segment limit given the
//    subset already placed (greedy evidence, not a proof for the
//    connection in isolation);
//  - kBudgetExhausted: the budget died before the connection was tried —
//    nothing is claimed about its routability.
//
// Deterministic: no clock, no RNG; tick-based budgets make even the
// truncation point reproducible (one tick per connection considered).
#pragma once

#include "alg/result.h"
#include "core/channel.h"
#include "core/channel_index.h"
#include "core/connection.h"
#include "harness/budget.h"

namespace segroute::alg {

struct PartialOptions {
  /// K-segment limit (0 = unlimited), enforced per placed connection.
  int max_segments = 0;

  /// Resource bounds; exhaustion truncates, it never corrupts (every
  /// connection placed before exhaustion stays placed and verified).
  harness::Budget budget;
};

/// Routes the maximal greedy subset of `cs` on `ch`. Registered in
/// alg::registry() as "partial". See file comment for the contract.
RouteResult partial_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                          const PartialOptions& opts = {},
                          const RouteContext& ctx = {});

}  // namespace segroute::alg
