#include "alg/greedy2track.h"

#include "core/routing.h"

namespace segroute::alg {

RouteResult greedy2track_route(const SegmentedChannel& ch,
                               const ConnectionSet& cs,
                               std::vector<Greedy2Event>* events) {
  RouteResult res;
  res.routing = Routing(cs.size());
  if (ch.max_segments_per_track() > 2) {
    res.fail(FailureKind::kInvalidInput,
             "greedy2track_route: every track must have at most two segments");
    return res;
  }
  if (cs.max_right() > ch.width()) {
    res.fail(FailureKind::kInvalidInput, "connections exceed channel width");
    return res;
  }

  Occupancy occ(ch);
  // A track is "unoccupied" while no connection has been assigned to it.
  std::vector<bool> track_used(static_cast<std::size_t>(ch.num_tracks()), false);
  int unused_tracks = ch.num_tracks();
  std::vector<ConnId> pool;

  auto emit = [&](Greedy2Event e) {
    if (events) events->push_back(std::move(e));
  };

  auto flush_pool_to = [&](Greedy2Event::Kind kind) -> bool {
    // Assign every pooled connection a whole unoccupied track.
    Greedy2Event ev;
    ev.kind = kind;
    TrackId t = 0;
    for (ConnId c : pool) {
      while (t < ch.num_tracks() && track_used[static_cast<std::size_t>(t)]) ++t;
      if (t >= ch.num_tracks()) return false;
      occ.place(t, cs[c].left, cs[c].right, c);
      res.routing.assign(c, t);
      track_used[static_cast<std::size_t>(t)] = true;
      --unused_tracks;
      ev.flushed.emplace_back(c, t);
    }
    pool.clear();
    emit(std::move(ev));
    return true;
  };

  for (ConnId i : cs.sorted_by_left()) {
    const Connection& c = cs[i];
    // Tracks where the connection occupies exactly one segment that is
    // still unoccupied; choose minimal segment right end.
    TrackId best = kNoTrack;
    Column best_right = 0;
    for (TrackId t = 0; t < ch.num_tracks(); ++t) {
      const Track& tr = ch.track(t);
      auto [a, b] = tr.span(c.left, c.right);
      if (a != b) continue;
      if (occ.occupant(t, a) != kNoConn) continue;
      const Column r = tr.segment(a).right;
      if (best == kNoTrack || r < best_right) {
        best = t;
        best_right = r;
      }
    }
    if (best == kNoTrack) {
      pool.push_back(i);
      emit(Greedy2Event{Greedy2Event::Kind::Pooled, i, kNoTrack, {}});
    } else {
      occ.place(best, c.left, c.right, i);
      res.routing.assign(i, best);
      if (!track_used[static_cast<std::size_t>(best)]) {
        track_used[static_cast<std::size_t>(best)] = true;
        --unused_tracks;
      }
      emit(Greedy2Event{Greedy2Event::Kind::AssignedSegment, i, best, {}});
    }
    if (static_cast<int>(pool.size()) > unused_tracks) {
      res.fail(FailureKind::kInfeasible,
               "pooled connections exceed unoccupied tracks (no routing)");
      return res;
    }
    if (!pool.empty() && static_cast<int>(pool.size()) == unused_tracks) {
      if (!flush_pool_to(Greedy2Event::Kind::PoolFlushed)) {
        res.fail(FailureKind::kInternal, "internal: pool flush failed");
        return res;
      }
    }
  }
  if (!pool.empty()) {
    if (static_cast<int>(pool.size()) > unused_tracks) {
      res.fail(FailureKind::kInfeasible,
               "pooled connections exceed unoccupied tracks (no routing)");
      return res;
    }
    if (!flush_pool_to(Greedy2Event::Kind::FinalPoolAssign)) {
      res.fail(FailureKind::kInternal, "internal: final pool assignment failed");
      return res;
    }
  }
  res.success = true;
  return res;
}

}  // namespace segroute::alg
