#include "alg/generalized_dp.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <type_traits>

#include "obs/instrument.h"

namespace segroute::alg {

namespace {

/// Per-track frontier entry, normalized with respect to the column of the
/// next unit piece (call it l):
///  - next_free: first column whose segment is unoccupied (>= l);
///  - occupant:  parent connection occupying the segment at column l, or
///    kNoConn — kept only while that parent can still extend (right >= l);
///  - prev: parent of the piece at column l-1 on this track (kNoConn if
///    none) — only tracked when a restricted variant needs it;
///  - cur: parent of the piece at column l on this track placed earlier in
///    the current column group (rolls into `prev` at the column boundary).
struct Entry {
  Column next_free = 0;
  ConnId occupant = kNoConn;
  ConnId prev = kNoConn;
  ConnId cur = kNoConn;

  friend bool operator==(const Entry&, const Entry&) = default;
};

// Entry is four int32s with no padding, so state equality over the arena
// is a memcmp and hashing can walk the raw words.
static_assert(std::has_unique_object_representations_v<Entry>);
static_assert(sizeof(Entry) == 4 * sizeof(std::int32_t));

/// FNV-1a over a state slice of `n` entries (field-wise, no aliasing).
std::uint64_t hash_state(const Entry* e, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint32_t x) {
    h ^= static_cast<std::uint64_t>(x);
    h *= 1099511628211ull;
  };
  for (std::size_t i = 0; i < n; ++i) {
    mix(static_cast<std::uint32_t>(e[i].next_free));
    mix(static_cast<std::uint32_t>(e[i].occupant));
    mix(static_cast<std::uint32_t>(e[i].prev));
    mix(static_cast<std::uint32_t>(e[i].cur));
  }
  return h;
}

/// A unit-column piece of a parent connection (Proposition 11's C').
struct Unit {
  Column col;
  ConnId parent;
};

}  // namespace

GeneralizedRouteResult generalized_dp_route(const SegmentedChannel& ch,
                                            const ConnectionSet& cs,
                                            const GeneralizedDpOptions& opts) {
  GeneralizedRouteResult res;
  res.routing = GeneralizedRouting(cs.size());
  SEGROUTE_SPAN(gdp_span, "alg.generalized_dp_route");
  if (cs.max_right() > ch.width()) {
    res.fail(FailureKind::kInvalidInput, "connections exceed channel width");
    SEGROUTE_SPAN_TAG(gdp_span, "outcome", to_string(res.failure));
    return res;
  }
  harness::BudgetMeter meter(opts.budget);
  const TrackId T = ch.num_tracks();
  const std::size_t Ts = static_cast<std::size_t>(T);
  const bool track_prev =
      opts.allowed_switch_columns.has_value() || opts.switch_requires_overlap;
  std::set<Column> switch_cols;
  if (opts.allowed_switch_columns) {
    switch_cols.insert(opts.allowed_switch_columns->begin(),
                       opts.allowed_switch_columns->end());
  }

  // Expand to unit pieces, sorted by column (Proposition 11).
  std::vector<Unit> units;
  for (ConnId i = 0; i < cs.size(); ++i) {
    for (Column l = cs[i].left; l <= cs[i].right; ++l) {
      units.push_back(Unit{l, i});
    }
  }
  std::stable_sort(units.begin(), units.end(),
                   [](const Unit& a, const Unit& b) { return a.col < b.col; });
  const std::size_t U = units.size();

  // Node storage: states in a flat arena (node i's state is
  // arena[i*T .. (i+1)*T)), scalars in parallel vectors — no per-node
  // heap allocation, equality by memcmp.
  std::vector<Entry> arena;
  arena.reserve(Ts * 1024);
  std::vector<std::int64_t> parent;
  std::vector<TrackId> edge_track;

  const Column L0 = U > 0 ? units[0].col : ch.width() + 1;
  arena.insert(arena.end(), Ts, Entry{L0, kNoConn, kNoConn, kNoConn});
  parent.push_back(-1);
  edge_track.push_back(kNoTrack);

  std::vector<std::int64_t> level = {0};
  res.stats.nodes_per_level.push_back(1);

  // Dedup hits accumulate in a plain local, flushed once per call.
  std::uint64_t dedup_hits = 0;

  // Consistent stats on every exit, including partially built levels;
  // also the single observability flush point for this call.
  auto finalize_stats = [&] {
    res.stats.total_nodes = parent.size();
    res.stats.max_level_nodes =
        res.stats.nodes_per_level.empty()
            ? 0
            : *std::max_element(res.stats.nodes_per_level.begin(),
                                res.stats.nodes_per_level.end());
    SEGROUTE_COUNT("gdp.routes", 1);
    SEGROUTE_COUNT("gdp.nodes_created", res.stats.total_nodes);
    SEGROUTE_COUNT("gdp.dedup_hits", dedup_hits);
    SEGROUTE_GAUGE_MAX("gdp.frontier_high_water", res.stats.max_level_nodes);
    SEGROUTE_GAUGE_MAX("gdp.arena_high_water_bytes",
                       arena.capacity() * sizeof(Entry));
    for (std::size_t n : res.stats.nodes_per_level) {
      SEGROUTE_HIST("gdp.level_nodes", n,
                    {1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 16384});
    }
    SEGROUTE_SPAN_TAG(gdp_span, "outcome",
                      res.failure == FailureKind::kNone
                          ? "success"
                          : to_string(res.failure));
  };

  // Per-level per-track tables: the segment lookup at the unit's column
  // (and at the previous column for the overlap rule) depends only on
  // (track, level), not on the node being expanded.
  std::vector<Column> seg_end(Ts);       // right end of segment at u.col
  std::vector<Column> prev_seg_end(Ts);  // right end of segment at u.col-1

  std::vector<Entry> scratch(Ts);
  std::vector<std::int64_t> slots;
  std::vector<std::int64_t> next_level;
  const auto rehash = [&](std::size_t cap) {
    slots.assign(cap, -1);
    const std::size_t mask = cap - 1;
    for (std::int64_t id : next_level) {
      std::size_t pos =
          static_cast<std::size_t>(hash_state(
              arena.data() + static_cast<std::size_t>(id) * Ts, Ts)) &
          mask;
      while (slots[pos] >= 0) pos = (pos + 1) & mask;
      slots[pos] = id;
    }
  };

  for (std::size_t step = 0; step < U; ++step) {
    const Unit u = units[step];
    const Column Lnext = (step + 1 < U) ? units[step + 1].col : ch.width() + 1;
    const bool switch_col_ok =
        !opts.allowed_switch_columns || switch_cols.contains(u.col);

    if (const ChannelIndex* idx = opts.index) {
      for (TrackId t = 0; t < T; ++t) {
        seg_end[static_cast<std::size_t>(t)] =
            idx->seg_right(t, idx->segment_at(t, u.col));
        if (track_prev && opts.switch_requires_overlap && u.col > 1) {
          prev_seg_end[static_cast<std::size_t>(t)] =
              idx->seg_right(t, idx->segment_at(t, u.col - 1));
        }
      }
    } else {
      for (TrackId t = 0; t < T; ++t) {
        const Track& tr = ch.track(t);
        seg_end[static_cast<std::size_t>(t)] =
            tr.segment(tr.segment_at(u.col)).right;
        if (track_prev && opts.switch_requires_overlap && u.col > 1) {
          prev_seg_end[static_cast<std::size_t>(t)] =
              tr.segment(tr.segment_at(u.col - 1)).right;
        }
      }
    }

    next_level.clear();
    std::size_t cap = 64;
    while (cap < level.size() * 4) cap <<= 1;
    slots.assign(cap, -1);
    std::size_t mask = cap - 1;

    for (std::int64_t ni : level) {
      for (TrackId t = 0; t < T; ++t) {
        if (!meter.tick()) {
          res.fail(FailureKind::kBudgetExhausted,
                   "budget exhausted: " + meter.reason());
          res.stats.nodes_per_level.push_back(next_level.size());
          finalize_stats();
          return res;
        }
        // Re-fetch per iteration: the arena may reallocate on insertion.
        const Entry* ps = arena.data() + static_cast<std::size_t>(ni) * Ts;
        const Entry e = ps[static_cast<std::size_t>(t)];
        const bool seg_free = e.next_free == u.col;
        const bool share_ok = !seg_free && e.occupant == u.parent;
        if (!seg_free && !share_ok) continue;

        // Restricted variants: a piece that does not continue on the same
        // track as the parent's previous piece starts a new part — a track
        // change at column u.col.
        if (track_prev && u.col > cs[u.parent].left && e.prev != u.parent) {
          if (!switch_col_ok) continue;
          if (opts.switch_requires_overlap) {
            // The previous piece sits on the track t2 with prev == parent;
            // its segment there must extend through column u.col so a
            // vertical jumper can bridge the tracks.
            bool overlap = false;
            for (TrackId t2 = 0; t2 < T; ++t2) {
              if (ps[static_cast<std::size_t>(t2)].prev == u.parent) {
                overlap = prev_seg_end[static_cast<std::size_t>(t2)] >= u.col;
                break;
              }
            }
            if (!overlap) continue;
          }
        }

        // Build the successor state in scratch: apply the placement to
        // track t and normalize every entry w.r.t. the next unit's column
        // in one pass over the parent state.
        for (TrackId t2 = 0; t2 < T; ++t2) {
          Entry e2 = ps[static_cast<std::size_t>(t2)];
          if (t2 == t) {
            e2.next_free = seg_end[static_cast<std::size_t>(t)] + 1;
            e2.occupant = u.parent;
            if (track_prev) e2.cur = u.parent;
          }
          if (Lnext > u.col) {
            // Column boundary: `cur` becomes `prev` if the columns are
            // adjacent, else both expire.
            e2.prev = (Lnext == u.col + 1) ? e2.cur : kNoConn;
            e2.cur = kNoConn;
          }
          if (e2.next_free <= Lnext) {
            e2.next_free = Lnext;
            e2.occupant = kNoConn;
          } else if (e2.occupant != kNoConn && cs[e2.occupant].right < Lnext) {
            e2.occupant = kNoConn;  // parent can no longer extend: forget it
          }
          scratch[static_cast<std::size_t>(t2)] = e2;
        }

        std::size_t pos =
            static_cast<std::size_t>(hash_state(scratch.data(), Ts)) & mask;
        for (;;) {
          const std::int64_t s = slots[pos];
          if (s < 0) {
            if (parent.size() >= opts.max_total_nodes) {
              res.fail(FailureKind::kBudgetExhausted,
                       "assignment graph exceeded node limit");
              res.stats.nodes_per_level.push_back(next_level.size());
              finalize_stats();
              return res;
            }
            const std::int64_t id = static_cast<std::int64_t>(parent.size());
            arena.insert(arena.end(), scratch.begin(), scratch.end());
            parent.push_back(ni);
            edge_track.push_back(t);
            slots[pos] = id;
            next_level.push_back(id);
            if ((next_level.size() + 1) * 2 > slots.size()) {
              rehash(slots.size() * 2);
              mask = slots.size() - 1;
            }
            break;
          }
          if (std::memcmp(arena.data() + static_cast<std::size_t>(s) * Ts,
                          scratch.data(), Ts * sizeof(Entry)) == 0) {
            ++dedup_hits;
            break;
          }
          pos = (pos + 1) & mask;
        }
      }
    }
    if (next_level.empty()) {
      res.fail(FailureKind::kInfeasible,
               "no generalized routing: level " + std::to_string(step + 1) +
                   " empty (column " + std::to_string(u.col) + ")");
      res.stats.nodes_per_level.push_back(0);
      finalize_stats();
      return res;
    }
    res.stats.nodes_per_level.push_back(next_level.size());
    std::swap(level, next_level);
  }

  finalize_stats();

  // Trace back per-unit track choices and rebuild parts.
  std::vector<TrackId> unit_track(U, kNoTrack);
  std::int64_t cur = level.front();
  for (std::size_t step = U; step-- > 0;) {
    unit_track[step] = edge_track[static_cast<std::size_t>(cur)];
    cur = parent[static_cast<std::size_t>(cur)];
  }
  std::vector<std::vector<std::pair<Column, TrackId>>> per_parent(
      static_cast<std::size_t>(cs.size()));
  for (std::size_t i = 0; i < U; ++i) {
    per_parent[static_cast<std::size_t>(units[i].parent)].emplace_back(
        units[i].col, unit_track[i]);
  }
  for (ConnId i = 0; i < cs.size(); ++i) {
    auto& pieces = per_parent[static_cast<std::size_t>(i)];
    std::sort(pieces.begin(), pieces.end());
    for (const auto& [col, t] : pieces) {
      res.routing.add_part(i, col, col, t);
    }
  }
  res.routing.normalize();
  res.success = true;
  return res;
}

}  // namespace segroute::alg
