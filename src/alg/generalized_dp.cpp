#include "alg/generalized_dp.h"

#include <algorithm>
#include <bit>
#include <set>
#include <type_traits>

#include "alg/frontier_bits.h"
#include "obs/instrument.h"

namespace segroute::alg {

namespace {

/// Per-track frontier entry, normalized with respect to the column of the
/// next unit piece (call it l):
///  - next_free: first column whose segment is unoccupied (>= l);
///  - occupant:  parent connection occupying the segment at column l, or
///    kNoConn — kept only while that parent can still extend (right >= l);
///  - prev: parent of the piece at column l-1 on this track (kNoConn if
///    none) — only tracked when a restricted variant needs it;
///  - cur: parent of the piece at column l on this track placed earlier in
///    the current column group (rolls into `prev` at the column boundary).
struct Entry {
  Column next_free = 0;
  ConnId occupant = kNoConn;
  ConnId prev = kNoConn;
  ConnId cur = kNoConn;

  friend bool operator==(const Entry&, const Entry&) = default;
};

// Entry is four int32s with no padding; states are stored bit-packed
// (alg/frontier_bits.h): next_free takes bit_width(width+1) bits and each
// ConnId field bit_width(M) bits (stored +1 so kNoConn packs as 0). When
// no restricted variant is active, prev/cur are kNoConn in every state,
// so they are omitted from the packing — still injective, so word-compare
// dedup stays exact.
static_assert(std::has_unique_object_representations_v<Entry>);
static_assert(sizeof(Entry) == 4 * sizeof(std::int32_t));

/// A unit-column piece of a parent connection (Proposition 11's C').
struct Unit {
  Column col;
  ConnId parent;
};

}  // namespace

GeneralizedRouteResult generalized_dp_route(const SegmentedChannel& ch,
                                            const ConnectionSet& cs,
                                            const GeneralizedDpOptions& opts) {
  GeneralizedRouteResult res;
  res.routing = GeneralizedRouting(cs.size());
  SEGROUTE_SPAN(gdp_span, "alg.generalized_dp_route");
  if (cs.max_right() > ch.width()) {
    res.fail(FailureKind::kInvalidInput, "connections exceed channel width");
    SEGROUTE_SPAN_TAG(gdp_span, "outcome", to_string(res.failure));
    return res;
  }
  harness::BudgetMeter meter(opts.budget);
  const TrackId T = ch.num_tracks();
  const std::size_t Ts = static_cast<std::size_t>(T);
  const bool track_prev =
      opts.allowed_switch_columns.has_value() || opts.switch_requires_overlap;
  std::set<Column> switch_cols;
  if (opts.allowed_switch_columns) {
    switch_cols.insert(opts.allowed_switch_columns->begin(),
                       opts.allowed_switch_columns->end());
  }

  // Expand to unit pieces, sorted by column (Proposition 11).
  std::vector<Unit> units;
  for (ConnId i = 0; i < cs.size(); ++i) {
    for (Column l = cs[i].left; l <= cs[i].right; ++l) {
      units.push_back(Unit{l, i});
    }
  }
  std::stable_sort(units.begin(), units.end(),
                   [](const Unit& a, const Unit& b) { return a.col < b.col; });
  const std::size_t U = units.size();

  // Node storage: states bit-packed in a flat word arena (node i's state
  // is arena[i*W .. (i+1)*W)), scalars in parallel vectors — no per-node
  // heap allocation, equality by word compare.
  const std::uint8_t col_bits = static_cast<std::uint8_t>(
      std::bit_width(static_cast<std::uint32_t>(ch.width() + 1) | 1u));
  const std::uint8_t conn_bits = static_cast<std::uint8_t>(
      std::bit_width(static_cast<std::uint32_t>(cs.size()) | 1u));
  const std::uint8_t pattern[4] = {col_bits, conn_bits, conn_bits, conn_bits};
  const std::size_t fields_per_track = track_prev ? 4 : 2;
  bits::FrontierCodec codec;
  codec.init(pattern, fields_per_track, Ts);
  const std::size_t W = codec.words();
  std::vector<std::int32_t> vals(fields_per_track * Ts);
  const auto pack_entries = [&](const Entry* e, std::uint64_t* out) {
    std::int32_t* vp = vals.data();
    for (std::size_t t2 = 0; t2 < Ts; ++t2) {
      *vp++ = e[t2].next_free;
      *vp++ = e[t2].occupant + 1;
      if (track_prev) {
        *vp++ = e[t2].prev + 1;
        *vp++ = e[t2].cur + 1;
      }
    }
    codec.pack(vals.data(), out);
  };
  const auto unpack_entries = [&](const std::uint64_t* in, Entry* e) {
    codec.unpack(in, vals.data());
    const std::int32_t* vp = vals.data();
    for (std::size_t t2 = 0; t2 < Ts; ++t2) {
      e[t2].next_free = *vp++;
      e[t2].occupant = *vp++ - 1;
      if (track_prev) {
        e[t2].prev = *vp++ - 1;
        e[t2].cur = *vp++ - 1;
      } else {
        e[t2].prev = kNoConn;
        e[t2].cur = kNoConn;
      }
    }
  };

  std::vector<std::uint64_t> arena;
  arena.reserve(W * 1024);
  std::vector<std::int64_t> parent;
  std::vector<TrackId> edge_track;

  const Column L0 = U > 0 ? units[0].col : ch.width() + 1;
  std::vector<Entry> state(Ts, Entry{L0, kNoConn, kNoConn, kNoConn});
  arena.resize(W);
  pack_entries(state.data(), arena.data());
  parent.push_back(-1);
  edge_track.push_back(kNoTrack);

  std::vector<std::int64_t> level = {0};
  res.stats.nodes_per_level.push_back(1);

  // Dedup hits accumulate in a plain local, flushed once per call.
  std::uint64_t dedup_hits = 0;

  // Consistent stats on every exit, including partially built levels;
  // also the single observability flush point for this call.
  auto finalize_stats = [&] {
    res.stats.total_nodes = parent.size();
    res.stats.max_level_nodes =
        res.stats.nodes_per_level.empty()
            ? 0
            : *std::max_element(res.stats.nodes_per_level.begin(),
                                res.stats.nodes_per_level.end());
    SEGROUTE_COUNT("gdp.routes", 1);
    SEGROUTE_COUNT("gdp.nodes_created", res.stats.total_nodes);
    SEGROUTE_COUNT("gdp.dedup_hits", dedup_hits);
    SEGROUTE_GAUGE_MAX("gdp.frontier_high_water", res.stats.max_level_nodes);
    // Packed-word bytes actually held by the state arena.
    SEGROUTE_GAUGE_MAX("gdp.arena_high_water_bytes",
                       arena.capacity() * sizeof(arena[0]));
    SEGROUTE_HIST_RANGE("gdp.level_nodes", res.stats.nodes_per_level.data(),
                        res.stats.nodes_per_level.size(),
                        {1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 16384});
    SEGROUTE_SPAN_TAG(gdp_span, "outcome",
                      res.failure == FailureKind::kNone
                          ? "success"
                          : to_string(res.failure));
  };

  // Per-level per-track tables: the segment lookup at the unit's column
  // (and at the previous column for the overlap rule) depends only on
  // (track, level), not on the node being expanded.
  std::vector<Column> seg_end(Ts);       // right end of segment at u.col
  std::vector<Column> prev_seg_end(Ts);  // right end of segment at u.col-1

  std::vector<Entry> scratch(Ts);
  std::vector<std::int64_t> slots;
  std::vector<std::int64_t> next_level;
  std::size_t mask = 0;
  const auto rehash = [&](std::size_t cap) {
    slots.assign(cap, -1);
    const std::size_t m = cap - 1;
    for (std::int64_t id : next_level) {
      std::size_t pos =
          static_cast<std::size_t>(bits::hash_words(
              arena.data() + static_cast<std::size_t>(id) * W, W)) &
          m;
      while (slots[pos] >= 0) pos = (pos + 1) & m;
      slots[pos] = id;
    }
  };

  // Staged dedup probes (see alg/frontier_bits.h): resolved strictly in
  // arrival order at each flush, so node ids and dedup outcomes are
  // identical to immediate probing. Returns false iff the node limit was
  // hit (failure recorded; stats not yet pushed).
  bits::ProbeBatch batch;
  std::vector<std::uint64_t> batch_store(bits::ProbeBatch::kCapacity * W);
  batch.reset(W, batch_store.data());
  const auto flush_batch = [&]() -> bool {
    if (batch.count > 1) {
      for (std::size_t i = 0; i < batch.count; ++i) {
        bits::prefetch_ro(
            &slots[static_cast<std::size_t>(batch.hash[i]) & mask]);
      }
    }
    for (std::size_t i = 0; i < batch.count; ++i) {
      const std::uint64_t* key = batch.words + i * W;
      std::size_t pos = static_cast<std::size_t>(batch.hash[i]) & mask;
      for (;;) {
        const std::int64_t s = slots[pos];
        if (s < 0) {
          if (parent.size() >= opts.max_total_nodes) {
            res.fail(FailureKind::kBudgetExhausted,
                     "assignment graph exceeded node limit");
            batch.count = 0;
            return false;
          }
          const std::int64_t id = static_cast<std::int64_t>(parent.size());
          arena.insert(arena.end(), key, key + W);
          parent.push_back(batch.origin[i]);
          edge_track.push_back(batch.aux[i]);
          slots[pos] = id;
          next_level.push_back(id);
          if ((next_level.size() + 1) * 2 > slots.size()) {
            rehash(slots.size() * 2);
            mask = slots.size() - 1;
          }
          break;
        }
        if (bits::words_equal(
                arena.data() + static_cast<std::size_t>(s) * W, key, W)) {
          ++dedup_hits;
          break;
        }
        pos = (pos + 1) & mask;
      }
    }
    batch.count = 0;
    return true;
  };

  for (std::size_t step = 0; step < U; ++step) {
    const Unit u = units[step];
    const Column Lnext = (step + 1 < U) ? units[step + 1].col : ch.width() + 1;
    const bool switch_col_ok =
        !opts.allowed_switch_columns || switch_cols.contains(u.col);

    if (const ChannelIndex* idx = opts.index) {
      for (TrackId t = 0; t < T; ++t) {
        seg_end[static_cast<std::size_t>(t)] =
            idx->seg_right(t, idx->segment_at(t, u.col));
        if (track_prev && opts.switch_requires_overlap && u.col > 1) {
          prev_seg_end[static_cast<std::size_t>(t)] =
              idx->seg_right(t, idx->segment_at(t, u.col - 1));
        }
      }
    } else {
      for (TrackId t = 0; t < T; ++t) {
        const Track& tr = ch.track(t);
        seg_end[static_cast<std::size_t>(t)] =
            tr.segment(tr.segment_at(u.col)).right;
        if (track_prev && opts.switch_requires_overlap && u.col > 1) {
          prev_seg_end[static_cast<std::size_t>(t)] =
              tr.segment(tr.segment_at(u.col - 1)).right;
        }
      }
    }

    next_level.clear();
    std::size_t cap = 64;
    while (cap < level.size() * 4) cap <<= 1;
    slots.assign(cap, -1);
    mask = cap - 1;
    // Batch probes only once the slot array outgrows L1 (see dp.cpp).
    const std::size_t flush_at =
        cap >= 4096 ? bits::ProbeBatch::kCapacity : 1;

    for (std::int64_t ni : level) {
      // Unpack this node's state once; the packed arena may then
      // reallocate freely while successors are inserted.
      unpack_entries(arena.data() + static_cast<std::size_t>(ni) * W,
                     state.data());
      const Entry* ps = state.data();
      for (TrackId t = 0; t < T; ++t) {
        if (!meter.tick()) {
          if (flush_batch()) {
            res.fail(FailureKind::kBudgetExhausted,
                     "budget exhausted: " + meter.reason());
          }
          res.stats.nodes_per_level.push_back(next_level.size());
          finalize_stats();
          return res;
        }
        const Entry e = ps[static_cast<std::size_t>(t)];
        const bool seg_free = e.next_free == u.col;
        const bool share_ok = !seg_free && e.occupant == u.parent;
        if (!seg_free && !share_ok) continue;

        // Restricted variants: a piece that does not continue on the same
        // track as the parent's previous piece starts a new part — a track
        // change at column u.col.
        if (track_prev && u.col > cs[u.parent].left && e.prev != u.parent) {
          if (!switch_col_ok) continue;
          if (opts.switch_requires_overlap) {
            // The previous piece sits on the track t2 with prev == parent;
            // its segment there must extend through column u.col so a
            // vertical jumper can bridge the tracks.
            bool overlap = false;
            for (TrackId t2 = 0; t2 < T; ++t2) {
              if (ps[static_cast<std::size_t>(t2)].prev == u.parent) {
                overlap = prev_seg_end[static_cast<std::size_t>(t2)] >= u.col;
                break;
              }
            }
            if (!overlap) continue;
          }
        }

        // Build the successor state in scratch: apply the placement to
        // track t and normalize every entry w.r.t. the next unit's column
        // in one pass over the parent state.
        for (TrackId t2 = 0; t2 < T; ++t2) {
          Entry e2 = ps[static_cast<std::size_t>(t2)];
          if (t2 == t) {
            e2.next_free = seg_end[static_cast<std::size_t>(t)] + 1;
            e2.occupant = u.parent;
            if (track_prev) e2.cur = u.parent;
          }
          if (Lnext > u.col) {
            // Column boundary: `cur` becomes `prev` if the columns are
            // adjacent, else both expire.
            e2.prev = (Lnext == u.col + 1) ? e2.cur : kNoConn;
            e2.cur = kNoConn;
          }
          if (e2.next_free <= Lnext) {
            e2.next_free = Lnext;
            e2.occupant = kNoConn;
          } else if (e2.occupant != kNoConn && cs[e2.occupant].right < Lnext) {
            e2.occupant = kNoConn;  // parent can no longer extend: forget it
          }
          scratch[static_cast<std::size_t>(t2)] = e2;
        }

        std::uint64_t* dst = batch.slot_words();
        pack_entries(scratch.data(), dst);
        batch.push(bits::hash_words(dst, W), ni, t, 0.0);
        if (batch.count >= flush_at && !flush_batch()) {
          res.stats.nodes_per_level.push_back(next_level.size());
          finalize_stats();
          return res;
        }
      }
    }
    if (!flush_batch()) {
      res.stats.nodes_per_level.push_back(next_level.size());
      finalize_stats();
      return res;
    }
    if (next_level.empty()) {
      res.fail(FailureKind::kInfeasible,
               "no generalized routing: level " + std::to_string(step + 1) +
                   " empty (column " + std::to_string(u.col) + ")");
      res.stats.nodes_per_level.push_back(0);
      finalize_stats();
      return res;
    }
    res.stats.nodes_per_level.push_back(next_level.size());
    std::swap(level, next_level);
  }

  finalize_stats();

  // Trace back per-unit track choices and rebuild parts.
  std::vector<TrackId> unit_track(U, kNoTrack);
  std::int64_t cur = level.front();
  for (std::size_t step = U; step-- > 0;) {
    unit_track[step] = edge_track[static_cast<std::size_t>(cur)];
    cur = parent[static_cast<std::size_t>(cur)];
  }
  std::vector<std::vector<std::pair<Column, TrackId>>> per_parent(
      static_cast<std::size_t>(cs.size()));
  for (std::size_t i = 0; i < U; ++i) {
    per_parent[static_cast<std::size_t>(units[i].parent)].emplace_back(
        units[i].col, unit_track[i]);
  }
  for (ConnId i = 0; i < cs.size(); ++i) {
    auto& pieces = per_parent[static_cast<std::size_t>(i)];
    std::sort(pieces.begin(), pieces.end());
    for (const auto& [col, t] : pieces) {
      res.routing.add_part(i, col, col, t);
    }
  }
  res.routing.normalize();
  res.success = true;
  return res;
}

}  // namespace segroute::alg
