#include "alg/generalized_dp.h"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace segroute::alg {

namespace {

/// Per-track frontier entry, normalized with respect to the column of the
/// next unit piece (call it l):
///  - next_free: first column whose segment is unoccupied (>= l);
///  - occupant:  parent connection occupying the segment at column l, or
///    kNoConn — kept only while that parent can still extend (right >= l);
///  - prev: parent of the piece at column l-1 on this track (kNoConn if
///    none) — only tracked when a restricted variant needs it;
///  - cur: parent of the piece at column l on this track placed earlier in
///    the current column group (rolls into `prev` at the column boundary).
struct Entry {
  Column next_free = 0;
  ConnId occupant = kNoConn;
  ConnId prev = kNoConn;
  ConnId cur = kNoConn;

  friend bool operator==(const Entry&, const Entry&) = default;
};

struct StateHash {
  std::size_t operator()(const std::vector<Entry>& v) const {
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t x) {
      h ^= x;
      h *= 1099511628211ull;
    };
    for (const Entry& e : v) {
      mix(static_cast<std::uint32_t>(e.next_free));
      mix(static_cast<std::uint32_t>(e.occupant + 1));
      mix(static_cast<std::uint32_t>(e.prev + 1));
      mix(static_cast<std::uint32_t>(e.cur + 1));
    }
    return static_cast<std::size_t>(h);
  }
};

struct Node {
  std::vector<Entry> state;
  std::int64_t parent = -1;
  TrackId edge_track = kNoTrack;
};

/// A unit-column piece of a parent connection (Proposition 11's C').
struct Unit {
  Column col;
  ConnId parent;
};

}  // namespace

GeneralizedRouteResult generalized_dp_route(const SegmentedChannel& ch,
                                            const ConnectionSet& cs,
                                            const GeneralizedDpOptions& opts) {
  GeneralizedRouteResult res;
  res.routing = GeneralizedRouting(cs.size());
  if (cs.max_right() > ch.width()) {
    res.fail(FailureKind::kInvalidInput, "connections exceed channel width");
    return res;
  }
  harness::BudgetMeter meter(opts.budget);
  const TrackId T = ch.num_tracks();
  const bool track_prev =
      opts.allowed_switch_columns.has_value() || opts.switch_requires_overlap;
  std::set<Column> switch_cols;
  if (opts.allowed_switch_columns) {
    switch_cols.insert(opts.allowed_switch_columns->begin(),
                       opts.allowed_switch_columns->end());
  }

  // Expand to unit pieces, sorted by column (Proposition 11).
  std::vector<Unit> units;
  for (ConnId i = 0; i < cs.size(); ++i) {
    for (Column l = cs[i].left; l <= cs[i].right; ++l) {
      units.push_back(Unit{l, i});
    }
  }
  std::stable_sort(units.begin(), units.end(),
                   [](const Unit& a, const Unit& b) { return a.col < b.col; });
  const std::size_t U = units.size();

  std::vector<Node> nodes;
  const Column L0 = U > 0 ? units[0].col : ch.width() + 1;
  nodes.push_back(Node{std::vector<Entry>(static_cast<std::size_t>(T),
                                          Entry{L0, kNoConn, kNoConn, kNoConn}),
                       -1, kNoTrack});
  std::vector<std::int64_t> level = {0};
  res.stats.nodes_per_level.push_back(1);

  for (std::size_t step = 0; step < U; ++step) {
    const Unit u = units[step];
    const Column Lnext = (step + 1 < U) ? units[step + 1].col : ch.width() + 1;
    std::unordered_map<std::vector<Entry>, std::int64_t, StateHash> seen;
    std::vector<std::int64_t> next_level;

    for (std::int64_t ni : level) {
      for (TrackId t = 0; t < T; ++t) {
        if (!meter.tick()) {
          res.fail(FailureKind::kBudgetExhausted,
                   "budget exhausted: " + meter.reason());
          res.stats.total_nodes = nodes.size();
          return res;
        }
        const Entry e = nodes[static_cast<std::size_t>(ni)]
                            .state[static_cast<std::size_t>(t)];
        const bool seg_free = e.next_free == u.col;
        const bool share_ok = !seg_free && e.occupant == u.parent;
        if (!seg_free && !share_ok) continue;

        // Restricted variants: a piece that does not continue on the same
        // track as the parent's previous piece starts a new part — a track
        // change at column u.col.
        if (track_prev && u.col > cs[u.parent].left && e.prev != u.parent) {
          if (opts.allowed_switch_columns && !switch_cols.contains(u.col)) {
            continue;
          }
          if (opts.switch_requires_overlap) {
            // The previous piece sits on the track t2 with prev == parent;
            // its segment there must extend through column u.col so a
            // vertical jumper can bridge the tracks.
            bool overlap = false;
            for (TrackId t2 = 0; t2 < T; ++t2) {
              const Entry& e2 = nodes[static_cast<std::size_t>(ni)]
                                    .state[static_cast<std::size_t>(t2)];
              if (e2.prev == u.parent) {
                const Track& tr2 = ch.track(t2);
                overlap =
                    tr2.segment(tr2.segment_at(u.col - 1)).right >= u.col;
                break;
              }
            }
            if (!overlap) continue;
          }
        }

        std::vector<Entry> st = nodes[static_cast<std::size_t>(ni)].state;
        const Track& tr = ch.track(t);
        const Segment& seg = tr.segment(tr.segment_at(u.col));
        Entry& mine = st[static_cast<std::size_t>(t)];
        mine.next_free = seg.right + 1;
        mine.occupant = u.parent;
        if (track_prev) mine.cur = u.parent;

        // Normalize every entry with respect to the next unit's column.
        for (TrackId t2 = 0; t2 < T; ++t2) {
          Entry& e2 = st[static_cast<std::size_t>(t2)];
          if (Lnext > u.col) {
            // Column boundary: `cur` becomes `prev` if the columns are
            // adjacent, else both expire.
            e2.prev = (Lnext == u.col + 1) ? e2.cur : kNoConn;
            e2.cur = kNoConn;
          }
          if (e2.next_free <= Lnext) {
            e2.next_free = Lnext;
            e2.occupant = kNoConn;
          } else if (e2.occupant != kNoConn && cs[e2.occupant].right < Lnext) {
            e2.occupant = kNoConn;  // parent can no longer extend: forget it
          }
        }

        auto it = seen.find(st);
        if (it == seen.end()) {
          if (nodes.size() >= opts.max_total_nodes) {
            res.fail(FailureKind::kBudgetExhausted,
                     "assignment graph exceeded node limit");
            return res;
          }
          const std::int64_t id = static_cast<std::int64_t>(nodes.size());
          nodes.push_back(Node{st, ni, t});
          seen.emplace(std::move(st), id);
          next_level.push_back(id);
        }
      }
    }
    if (next_level.empty()) {
      res.fail(FailureKind::kInfeasible,
               "no generalized routing: level " + std::to_string(step + 1) +
                   " empty (column " + std::to_string(u.col) + ")");
      res.stats.nodes_per_level.push_back(0);
      res.stats.total_nodes = nodes.size();
      res.stats.max_level_nodes =
          *std::max_element(res.stats.nodes_per_level.begin(),
                            res.stats.nodes_per_level.end());
      return res;
    }
    res.stats.nodes_per_level.push_back(next_level.size());
    level = std::move(next_level);
  }

  res.stats.total_nodes = nodes.size();
  res.stats.max_level_nodes = *std::max_element(
      res.stats.nodes_per_level.begin(), res.stats.nodes_per_level.end());

  // Trace back per-unit track choices and rebuild parts.
  std::vector<TrackId> unit_track(U, kNoTrack);
  std::int64_t cur = level.front();
  for (std::size_t step = U; step-- > 0;) {
    unit_track[step] = nodes[static_cast<std::size_t>(cur)].edge_track;
    cur = nodes[static_cast<std::size_t>(cur)].parent;
  }
  std::vector<std::vector<std::pair<Column, TrackId>>> per_parent(
      static_cast<std::size_t>(cs.size()));
  for (std::size_t i = 0; i < U; ++i) {
    per_parent[static_cast<std::size_t>(units[i].parent)].emplace_back(
        units[i].col, unit_track[i]);
  }
  for (ConnId i = 0; i < cs.size(); ++i) {
    auto& pieces = per_parent[static_cast<std::size_t>(i)];
    std::sort(pieces.begin(), pieces.end());
    for (const auto& [col, t] : pieces) {
      res.routing.add_part(i, col, col, t);
    }
  }
  res.routing.normalize();
  res.success = true;
  return res;
}

}  // namespace segroute::alg
