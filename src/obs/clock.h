// Monotonic time source for the observability layer.
//
// Everything in obs/ timestamps against one steady clock, read as
// integer nanoseconds: spans subtract two readings, the trace exporter
// rescales to the microseconds Chrome's trace viewer expects. Kept in
// its own header so instrumented code pulls in <chrono> and nothing
// else.
#pragma once

#include <chrono>
#include <cstdint>

namespace segroute::obs {

/// Nanoseconds on the process-wide monotonic clock. Comparable across
/// threads; meaningless across processes.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Nanoseconds -> the fractional microseconds of Chrome's trace_event
/// "ts"/"dur" fields.
inline double ns_to_trace_us(std::uint64_t ns) {
  return static_cast<double>(ns) / 1000.0;
}

}  // namespace segroute::obs
