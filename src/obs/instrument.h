// Instrumentation entry points for library code.
//
// Every span/metric update in the routers, the engine, the pool and the
// harness goes through these macros, never through obs/span.h or
// obs/metrics.h directly. With SEGROUTE_OBS_ENABLED=1 (the default; see
// the SEGROUTE_OBS CMake option) they expand to the real thing:
// counters and gauges resolve their registry entry once into a function-
// local static reference, so the steady-state cost of an update is one
// relaxed atomic op; spans cost one relaxed load when no TraceSession is
// active. With SEGROUTE_OBS_ENABLED=0 they compile to nothing — the
// argument expressions are type-checked but never evaluated, so the OFF
// build is bit-identical in behavior and carries zero observability
// code in the hot paths.
//
// Tag/name strings passed to spans must have static storage duration
// (string literals, to_string(enum) results).
#pragma once

#ifndef SEGROUTE_OBS_ENABLED
#define SEGROUTE_OBS_ENABLED 1
#endif

#if SEGROUTE_OBS_ENABLED

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"

/// Declares an RAII span named `var` for the enclosing scope.
/// Usage: SEGROUTE_SPAN(span, "alg.dp_route");
///        SEGROUTE_SPAN(span, "robust.stage", "stage", to_string(s));
#define SEGROUTE_SPAN(var, ...) ::segroute::obs::Span var{__VA_ARGS__}

/// Sets/overwrites the tag on a span declared with SEGROUTE_SPAN.
#define SEGROUTE_SPAN_TAG(var, key, value) (var).tag((key), (value))

/// Records a zero-duration instant event.
#define SEGROUTE_INSTANT(...) ::segroute::obs::instant(__VA_ARGS__)

/// Adds `n` to the named process-wide counter.
#define SEGROUTE_COUNT(name, n)                                            \
  do {                                                                     \
    static ::segroute::obs::Counter& seg_obs_c_ =                          \
        ::segroute::obs::Registry::instance().counter(name);               \
    seg_obs_c_.add(static_cast<std::uint64_t>(n));                         \
  } while (0)

/// Sets the named gauge to `v`.
#define SEGROUTE_GAUGE_SET(name, v)                                        \
  do {                                                                     \
    static ::segroute::obs::Gauge& seg_obs_g_ =                            \
        ::segroute::obs::Registry::instance().gauge(name);                 \
    seg_obs_g_.set(static_cast<double>(v));                                \
  } while (0)

/// Raises the named gauge to `v` if larger (high-water marks).
#define SEGROUTE_GAUGE_MAX(name, v)                                        \
  do {                                                                     \
    static ::segroute::obs::Gauge& seg_obs_g_ =                            \
        ::segroute::obs::Registry::instance().gauge(name);                 \
    seg_obs_g_.set_max(static_cast<double>(v));                            \
  } while (0)

/// Observes `v` in the named histogram; the bucket upper bounds
/// (ascending) are fixed on first use.
/// Usage: SEGROUTE_HIST("dp.level_nodes", n, {1, 4, 16, 64, 256, 1024});
#define SEGROUTE_HIST(name, v, ...)                                        \
  do {                                                                     \
    static ::segroute::obs::Histogram& seg_obs_h_ =                        \
        ::segroute::obs::Registry::instance().histogram(                   \
            name, std::vector<double> __VA_ARGS__);                        \
    seg_obs_h_.observe(static_cast<double>(v));                            \
  } while (0)

/// Observes every element of [ptr, ptr + n) in the named histogram —
/// snapshot-identical to n SEGROUTE_HIST calls, one atomic per touched
/// bucket (Histogram::observe_range).
#define SEGROUTE_HIST_RANGE(name, ptr, n, ...)                             \
  do {                                                                     \
    static ::segroute::obs::Histogram& seg_obs_h_ =                        \
        ::segroute::obs::Registry::instance().histogram(                   \
            name, std::vector<double> __VA_ARGS__);                        \
    seg_obs_h_.observe_range((ptr), (n));                                  \
  } while (0)

#else  // SEGROUTE_OBS_ENABLED == 0

namespace segroute::obs {

/// Stand-in for obs::Span when observability is compiled out: accepts
/// and ignores the same construction and tag() shapes. The arguments
/// appear inside `if constexpr (false)` at the call sites, so they are
/// type-checked but never evaluated.
struct NoopSpan {
  constexpr NoopSpan() = default;
  template <typename... A>
  constexpr void tag(A&&...) const {}
  [[nodiscard]] static constexpr bool active() { return false; }
  [[nodiscard]] static constexpr unsigned long long id() { return 0; }
};

template <typename... A>
constexpr void noop_sink(A&&...) {}

}  // namespace segroute::obs

#define SEGROUTE_SPAN(var, ...)                                            \
  ::segroute::obs::NoopSpan var{};                                         \
  if constexpr (false) ::segroute::obs::noop_sink(__VA_ARGS__)

#define SEGROUTE_SPAN_TAG(var, key, value)                                 \
  do {                                                                     \
    if constexpr (false) ::segroute::obs::noop_sink((var), (key), (value)); \
  } while (0)

#define SEGROUTE_INSTANT(...)                                              \
  do {                                                                     \
    if constexpr (false) ::segroute::obs::noop_sink(__VA_ARGS__);          \
  } while (0)

#define SEGROUTE_COUNT(name, n)                                            \
  do {                                                                     \
    if constexpr (false) ::segroute::obs::noop_sink((name), (n));          \
  } while (0)

#define SEGROUTE_GAUGE_SET(name, v)                                        \
  do {                                                                     \
    if constexpr (false) ::segroute::obs::noop_sink((name), (v));          \
  } while (0)

#define SEGROUTE_GAUGE_MAX(name, v)                                        \
  do {                                                                     \
    if constexpr (false) ::segroute::obs::noop_sink((name), (v));          \
  } while (0)

#define SEGROUTE_HIST(name, v, ...)                                        \
  do {                                                                     \
    if constexpr (false) ::segroute::obs::noop_sink((name), (v));          \
  } while (0)

#define SEGROUTE_HIST_RANGE(name, ptr, n, ...)                             \
  do {                                                                     \
    if constexpr (false) ::segroute::obs::noop_sink((name), (ptr), (n));   \
  } while (0)

#endif  // SEGROUTE_OBS_ENABLED
