// RAII trace spans on the monotonic clock, drained to Chrome trace JSON.
//
// A Span marks a region of one thread's execution. While a TraceSession
// is active, constructing a Span assigns it an id, links it to the
// innermost open span on the same thread (parent id), and its destructor
// appends one fixed-size record to the thread's buffer. With no active
// session the constructor is one relaxed atomic load and the destructor
// nothing — spans can stay in production code permanently.
//
// Records carry at most one tag (key + static-string or integer value):
// enough for "outcome: infeasible" / "fingerprint: 0x…" style
// annotations without ever allocating. Name, category and tag strings
// must have static storage duration — they are stored as pointers and
// read at drain time.
//
// Buffers are per-thread (registered on first use, never deallocated)
// and fixed-capacity: when a thread exceeds the session's per-thread
// event capacity further records are dropped and counted, never
// reallocated mid-measurement. Buffer access is guarded by a per-buffer
// mutex — uncontended in steady state since only the owning thread
// appends — which keeps the drain (another thread) data-race-free under
// TSan.
//
// One TraceSession may be active at a time, process-wide. stop() drains
// every thread buffer; write_chrome_trace() emits the Chrome
// trace_event JSON ("X" complete events, "i" instants) loadable in
// chrome://tracing or Perfetto.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace segroute::obs {

/// One completed span or instant, as drained from a thread buffer.
struct TraceEvent {
  const char* name = nullptr;      // static string
  const char* tag_key = nullptr;   // nullptr = untagged
  const char* tag_str = nullptr;   // static string; nullptr = numeric tag
  std::uint64_t tag_u64 = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;        // == start_ns for instants
  std::uint64_t id = 0;            // unique per process run
  std::uint64_t parent = 0;        // 0 = top-level
  std::uint32_t tid = 0;           // small per-thread ordinal
  bool instant = false;
};

/// True while some TraceSession is recording. One relaxed load.
bool tracing_active();

/// RAII span. Cheap no-op when no session is active.
class Span {
 public:
  explicit Span(const char* name);
  Span(const char* name, const char* tag_key, const char* tag_value);
  Span(const char* name, const char* tag_key, std::uint64_t tag_value);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Sets (or replaces) the tag; e.g. the outcome, known only at the
  /// end of the region. No-op on an inactive span.
  void tag(const char* key, const char* value);
  void tag(const char* key, std::uint64_t value);

  /// Whether this span is recording (a session was active at entry).
  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }

 private:
  const char* name_;
  const char* tag_key_ = nullptr;
  const char* tag_str_ = nullptr;
  std::uint64_t tag_u64_ = 0;
  std::uint64_t start_ns_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  bool active_ = false;
};

/// Records a zero-duration instant event, parented to the innermost
/// open span on this thread. No-op without an active session.
void instant(const char* name);
void instant(const char* name, const char* tag_key, const char* tag_value);
void instant(const char* name, const char* tag_key, std::uint64_t tag_value);

/// Collects spans from every thread between start() and stop().
class TraceSession {
 public:
  /// `capacity_per_thread`: event records each thread may hold before
  /// dropping (fixed; no mid-run reallocation).
  explicit TraceSession(std::size_t capacity_per_thread = 16384);
  ~TraceSession();  // stops if still active

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Begins recording. Returns false (and records nothing) if another
  /// session is already active.
  bool start();

  /// Ends recording and drains every thread buffer into events().
  /// Idempotent.
  void stop();

  [[nodiscard]] bool active() const;

  /// Drained events, available after stop(). Sorted by start time.
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }

  /// Events dropped across all threads because a buffer filled up.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Chrome trace_event JSON for the drained events. Timestamps are
  /// rebased to the session start.
  [[nodiscard]] std::string chrome_trace_json() const;
  void write_chrome_trace(std::ostream& os) const;

  [[nodiscard]] std::size_t capacity_per_thread() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::uint64_t start_ns_ = 0;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace segroute::obs
