#include "obs/span.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include "io/json.h"
#include "obs/clock.h"

namespace segroute::obs {

namespace {

// Session globals. The active session is published as a pointer for
// identity only; everything the record path needs (epoch, capacity) is
// mirrored into its own atomic so no thread ever dereferences a session
// that might be mid-destruction.
std::atomic<TraceSession*> g_active{nullptr};
std::atomic<std::uint64_t> g_epoch{0};
std::atomic<std::size_t> g_capacity{0};
std::atomic<std::uint64_t> g_next_id{1};

/// Per-thread event buffer. Registered once, never deallocated (bounded
/// by the number of threads ever traced). The mutex is uncontended on
/// the append path — only the owning thread appends; it exists so the
/// draining thread's reads are data-race-free.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint64_t epoch = 0;
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;
};

struct BufferRegistry {
  std::mutex mu;
  std::vector<ThreadBuffer*> buffers;
};

BufferRegistry& registry() {
  static BufferRegistry* reg = new BufferRegistry();
  return *reg;
}

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer* buf = [] {
    auto* b = new ThreadBuffer();  // leaked: outlives the thread for drains
    BufferRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    b->tid = static_cast<std::uint32_t>(reg.buffers.size());
    reg.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

/// Innermost open span id on this thread (0 = none).
thread_local std::uint64_t t_open_parent = 0;

void append(const TraceEvent& ev) {
  if (g_active.load(std::memory_order_acquire) == nullptr) return;
  const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  ThreadBuffer& buf = thread_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  if (buf.epoch != epoch) {
    buf.events.clear();
    buf.dropped = 0;
    buf.epoch = epoch;
    buf.events.reserve(g_capacity.load(std::memory_order_relaxed));
  }
  if (buf.events.size() < buf.events.capacity()) {
    buf.events.push_back(ev);
    buf.events.back().tid = buf.tid;
  } else {
    ++buf.dropped;
  }
}

}  // namespace

bool tracing_active() {
  return g_active.load(std::memory_order_relaxed) != nullptr;
}

// --- Span ------------------------------------------------------------------

Span::Span(const char* name) : name_(name) {
  if (g_active.load(std::memory_order_relaxed) == nullptr) return;
  active_ = true;
  id_ = g_next_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_open_parent;
  t_open_parent = id_;
  start_ns_ = now_ns();
}

Span::Span(const char* name, const char* tag_key, const char* tag_value)
    : Span(name) {
  tag_key_ = tag_key;
  tag_str_ = tag_value;
}

Span::Span(const char* name, const char* tag_key, std::uint64_t tag_value)
    : Span(name) {
  tag_key_ = tag_key;
  tag_u64_ = tag_value;
}

void Span::tag(const char* key, const char* value) {
  tag_key_ = key;
  tag_str_ = value;
}

void Span::tag(const char* key, std::uint64_t value) {
  tag_key_ = key;
  tag_str_ = nullptr;
  tag_u64_ = value;
}

Span::~Span() {
  if (!active_) return;
  t_open_parent = parent_;
  TraceEvent ev;
  ev.name = name_;
  ev.tag_key = tag_key_;
  ev.tag_str = tag_str_;
  ev.tag_u64 = tag_u64_;
  ev.start_ns = start_ns_;
  ev.end_ns = now_ns();
  ev.id = id_;
  ev.parent = parent_;
  append(ev);
}

// --- Instants --------------------------------------------------------------

namespace {

void instant_impl(const char* name, const char* key, const char* sval,
                  std::uint64_t uval) {
  if (g_active.load(std::memory_order_relaxed) == nullptr) return;
  TraceEvent ev;
  ev.name = name;
  ev.tag_key = key;
  ev.tag_str = sval;
  ev.tag_u64 = uval;
  ev.start_ns = ev.end_ns = now_ns();
  ev.id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  ev.parent = t_open_parent;
  ev.instant = true;
  append(ev);
}

}  // namespace

void instant(const char* name) { instant_impl(name, nullptr, nullptr, 0); }
void instant(const char* name, const char* tag_key, const char* tag_value) {
  instant_impl(name, tag_key, tag_value, 0);
}
void instant(const char* name, const char* tag_key, std::uint64_t tag_value) {
  instant_impl(name, tag_key, nullptr, tag_value);
}

// --- TraceSession ----------------------------------------------------------

TraceSession::TraceSession(std::size_t capacity_per_thread)
    : capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread) {}

TraceSession::~TraceSession() { stop(); }

namespace {

/// Serializes start/stop transitions (rare) so the epoch can only move
/// while no session is active — recorders never see a new epoch under
/// an old session.
std::mutex& session_mutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

}  // namespace

bool TraceSession::start() {
  std::lock_guard<std::mutex> lock(session_mutex());
  if (g_active.load(std::memory_order_relaxed) != nullptr) return false;
  // Publish epoch and capacity before the session pointer: a recorder
  // that sees the pointer (acquire pairs with this release) also sees
  // the new epoch.
  g_epoch.fetch_add(1, std::memory_order_relaxed);
  g_capacity.store(capacity_, std::memory_order_relaxed);
  start_ns_ = now_ns();
  events_.clear();
  dropped_ = 0;
  g_active.store(this, std::memory_order_release);
  return true;
}

bool TraceSession::active() const {
  return g_active.load(std::memory_order_relaxed) == this;
}

void TraceSession::stop() {
  std::lock_guard<std::mutex> session_lock(session_mutex());
  if (g_active.load(std::memory_order_relaxed) != this) {
    return;  // not the active session (already stopped, or never started)
  }
  g_active.store(nullptr, std::memory_order_release);
  const std::uint64_t epoch = g_epoch.load(std::memory_order_relaxed);
  BufferRegistry& reg = registry();
  std::vector<ThreadBuffer*> bufs;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    bufs = reg.buffers;
  }
  for (ThreadBuffer* buf : bufs) {
    std::lock_guard<std::mutex> lock(buf->mu);
    if (buf->epoch != epoch) continue;
    events_.insert(events_.end(), buf->events.begin(), buf->events.end());
    dropped_ += buf->dropped;
    buf->events.clear();
    buf->events.shrink_to_fit();
    buf->dropped = 0;
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                                     : a.id < b.id;
                   });
}

void TraceSession::write_chrome_trace(std::ostream& os) const {
  os << "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& ev = events_[i];
    const std::uint64_t rel =
        ev.start_ns >= start_ns_ ? ev.start_ns - start_ns_ : 0;
    os << "  {\"name\": \"" << io::json_escape(ev.name)
       << "\", \"cat\": \"segroute\", \"ph\": \""
       << (ev.instant ? "i" : "X") << "\", \"pid\": 1, \"tid\": " << ev.tid
       << ", \"ts\": " << ns_to_trace_us(rel);
    if (ev.instant) {
      os << ", \"s\": \"t\"";
    } else {
      os << ", \"dur\": " << ns_to_trace_us(ev.end_ns - ev.start_ns);
    }
    os << ", \"args\": {\"id\": " << ev.id << ", \"parent\": " << ev.parent;
    if (ev.tag_key != nullptr) {
      os << ", \"" << io::json_escape(ev.tag_key) << "\": ";
      if (ev.tag_str != nullptr) {
        os << "\"" << io::json_escape(ev.tag_str) << "\"";
      } else {
        // As a string: u64 tags (fingerprints) can exceed the 2^53
        // integer range JSON consumers preserve.
        os << "\"" << ev.tag_u64 << "\"";
      }
    }
    os << "}}" << (i + 1 < events_.size() ? "," : "") << "\n";
  }
  os << "]}\n";
}

std::string TraceSession::chrome_trace_json() const {
  std::ostringstream os;
  write_chrome_trace(os);
  return os.str();
}

}  // namespace segroute::obs
