// Process-wide metrics registry: named counters, gauges and
// fixed-bucket histograms, cheap enough to update from router hot paths.
//
// Design constraints, in order:
//   1. an update must never perturb the code it measures — no locks, no
//      allocation, no syscalls on the update path;
//   2. concurrent updates from pool workers must not contend — every
//      metric is backed by per-thread shards (cache-line padded relaxed
//      atomics) that are only summed at snapshot time;
//   3. snapshots may race with updates — a snapshot is a consistent
//      *per-shard* read, so it can be mid-update across shards, but it
//      is data-race-free and monotone for counters.
//
// Registration is by name and idempotent: `Registry::counter("x")`
// returns the same object for the life of the process, so call sites
// cache a `static Counter&` (the SEGROUTE_* macros in obs/instrument.h
// do exactly that) and the per-update cost is one relaxed fetch_add.
// Metric objects are never destroyed before process exit.
//
// Exposition: `prometheus_text()` (text format 0.0.4, names sanitized
// and prefixed `segroute_`, histogram buckets cumulative with `le`
// labels) and `json_text()` (exact names, non-cumulative buckets) —
// both deterministic orderings for golden-file diffs. `reset()` zeroes
// every value but keeps registrations, for tests and benches.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace segroute::obs {

namespace detail {

/// Number of per-metric shards. A power of two; more shards = less
/// false sharing between unrelated threads at ~1 KiB per metric.
inline constexpr unsigned kShards = 16;

inline std::atomic<unsigned>& shard_counter() {
  static std::atomic<unsigned> counter{0};
  return counter;
}

/// The calling thread's shard index, assigned round-robin on first use.
inline unsigned shard_id() {
  thread_local const unsigned id =
      shard_counter().fetch_add(1, std::memory_order_relaxed) % kShards;
  return id;
}

struct alignas(64) U64Shard {
  std::atomic<std::uint64_t> v{0};
};

/// Relaxed add on an atomic double (no fetch_add for floats pre-C++20
/// on all toolchains; the CAS loop is uncontended per shard anyway).
inline void atomic_add(std::atomic<double>& a, double x) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotone event count. add() is one relaxed fetch_add on the calling
/// thread's shard.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    shards_[detail::shard_id()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  /// Sum over shards. May run concurrently with add().
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  detail::U64Shard shards_[detail::kShards];
};

/// Last-written (or running-max) level. A gauge is one atomic — gauges
/// record states, not rates, so the last writer winning is the point.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }

  /// Raises the gauge to v if v is larger (high-water marks).
  void set_max(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations with
/// v <= bounds[i] and > bounds[i-1]; one implicit overflow bucket
/// catches everything above the last bound. Bounds are fixed at
/// registration and never change.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  /// Observes every value in [vs, vs + n). Snapshot-identical to n
  /// observe() calls, but buckets are aggregated locally first so each
  /// touched bucket costs one atomic update instead of one per value —
  /// the cheap way to flush a per-call series (e.g. DP level sizes) at
  /// finalization time.
  void observe_range(const std::size_t* vs, std::size_t n);

  struct Snapshot {
    std::vector<double> bounds;          // upper bounds, ascending
    std::vector<std::uint64_t> counts;   // bounds.size() + 1 entries
    std::uint64_t total = 0;             // sum of counts
    double sum = 0.0;                    // sum of observed values
  };
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

  void reset();

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::vector<Shard> shards_;
};

/// One coherent read of every registered metric, for programmatic
/// consumption (the text expositions are rendered from this).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};

/// The process-wide registry. Registration takes a mutex (amortized
/// away by the static-reference idiom); updates touch only the metric's
/// own shards.
class Registry {
 public:
  static Registry& instance();

  /// Finds or creates. The returned reference is valid for the life of
  /// the process.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` must be ascending; ignored (the original bounds win) when
  /// the histogram already exists.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Prometheus text exposition (names sanitized, `segroute_` prefix,
  /// cumulative `le` buckets).
  [[nodiscard]] std::string prometheus_text() const;

  /// JSON snapshot: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} with exact metric names.
  [[nodiscard]] std::string json_text() const;

  /// Zeroes every metric, keeping all registrations (and therefore all
  /// cached static references) valid.
  void reset();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace segroute::obs
