#include "obs/metrics.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "io/json.h"

namespace segroute::obs {

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), shards_(detail::kShards) {
  for (auto& s : shards_) {
    s.counts = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::observe(double v) {
  // Bucket = first bound >= v; bounds are short (tens), a branchless
  // binary search would not beat this linear scan in practice.
  std::size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  Shard& s = shards_[detail::shard_id()];
  s.counts[b].fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(s.sum, v);
}

void Histogram::observe_range(const std::size_t* vs, std::size_t n) {
  if (n == 0) return;
  constexpr std::size_t kMaxLocal = 33;  // bounds lists here are short
  const std::size_t nb = bounds_.size() + 1;
  if (nb > kMaxLocal) {
    for (std::size_t i = 0; i < n; ++i) observe(static_cast<double>(vs[i]));
    return;
  }
  std::uint64_t local[kMaxLocal] = {};
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(vs[i]);
    std::size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b]) ++b;
    ++local[b];
    sum += v;
  }
  Shard& s = shards_[detail::shard_id()];
  for (std::size_t b = 0; b < nb; ++b) {
    if (local[b] != 0) s.counts[b].fetch_add(local[b], std::memory_order_relaxed);
  }
  detail::atomic_add(s.sum, sum);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  out.bounds = bounds_;
  out.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (std::size_t b = 0; b < out.counts.size(); ++b) {
      out.counts[b] += s.counts[b].load(std::memory_order_relaxed);
    }
    out.sum += s.sum.load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : out.counts) out.total += c;
  return out;
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    for (auto& c : s.counts) c.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

// --- Registry --------------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mu;
  // std::map: stable addresses are provided by the unique_ptr, sorted
  // iteration gives the deterministic exposition order for free.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry& Registry::instance() {
  // Leaked on purpose: instrumented code may run from thread_local
  // destructors after static destruction begins.
  static Registry* reg = new Registry();
  return *reg;
}

Registry::Impl& Registry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

Counter& Registry::counter(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.counters.find(name);
  if (it == im.counters.end()) {
    it = im.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.gauges.find(name);
  if (it == im.gauges.end()) {
    it = im.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.histograms.find(name);
  if (it == im.histograms.end()) {
    it = im.histograms
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  MetricsSnapshot out;
  for (const auto& [name, c] : im.counters) {
    out.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : im.gauges) {
    out.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : im.histograms) {
    out.histograms.emplace_back(name, h->snapshot());
  }
  return out;
}

void Registry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, c] : im.counters) c->reset();
  for (auto& [name, g] : im.gauges) g->reset();
  for (auto& [name, h] : im.histograms) h->reset();
}

namespace {

/// Prometheus metric name: [a-zA-Z0-9_] only, `segroute_` prefix.
std::string prom_name(const std::string& name) {
  std::string out = "segroute_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string num(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

std::string Registry::prometheus_text() const {
  const MetricsSnapshot snap = snapshot();
  std::ostringstream os;
  for (const auto& [name, v] : snap.counters) {
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " counter\n" << pn << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " gauge\n" << pn << " " << num(v) << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      cum += h.counts[b];
      os << pn << "_bucket{le=\"" << num(h.bounds[b]) << "\"} " << cum << "\n";
    }
    os << pn << "_bucket{le=\"+Inf\"} " << h.total << "\n";
    os << pn << "_sum " << num(h.sum) << "\n";
    os << pn << "_count " << h.total << "\n";
  }
  return os.str();
}

std::string Registry::json_text() const {
  const MetricsSnapshot snap = snapshot();
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i ? "," : "") << "\n    \""
       << io::json_escape(snap.counters[i].first)
       << "\": " << snap.counters[i].second;
  }
  os << (snap.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    os << (i ? "," : "") << "\n    \"" << io::json_escape(snap.gauges[i].first)
       << "\": " << num(snap.gauges[i].second);
  }
  os << (snap.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& [name, h] = snap.histograms[i];
    os << (i ? "," : "") << "\n    \"" << io::json_escape(name)
       << "\": {\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      os << (b ? ", " : "") << num(h.bounds[b]);
    }
    os << "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      os << (b ? ", " : "") << h.counts[b];
    }
    os << "], \"sum\": " << num(h.sum) << ", \"count\": " << h.total << "}";
  }
  os << (snap.histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

}  // namespace segroute::obs
