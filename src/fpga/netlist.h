// A minimal logical netlist over cells — the demand side of the
// channeled-FPGA model of Fig. 1. Nets connect logical cells; placement
// (fpga/place.h) gives cells physical positions; global routing
// (fpga/device.h) turns placed nets into per-channel horizontal
// connections that segroute's channel routers then assign to segments.
#pragma once

#include <random>
#include <string>
#include <vector>

namespace segroute::fpga {

/// A multi-terminal net over logical cell ids (first cell is the driver).
struct CellNet {
  std::vector<int> cells;
  std::string name;
};

/// A netlist: `num_cells` logical cells and the nets connecting them.
class Netlist {
 public:
  Netlist(int num_cells, std::vector<CellNet> nets);

  [[nodiscard]] int num_cells() const { return num_cells_; }
  [[nodiscard]] int num_nets() const { return static_cast<int>(nets_.size()); }
  [[nodiscard]] const CellNet& net(int i) const {
    return nets_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const std::vector<CellNet>& nets() const { return nets_; }

 private:
  int num_cells_;
  std::vector<CellNet> nets_;
};

/// Random netlist with locality: each net's cells are drawn from a window
/// of ids (windows model logical clustering; the placer should recover
/// it). Fanout is uniform in [2, max_fanout].
Netlist random_netlist(int num_cells, int num_nets, int max_fanout,
                       int locality_window, std::mt19937_64& rng);

}  // namespace segroute::fpga
