#include "fpga/fabric.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>

#include "alg/decompose.h"
#include "core/channel_index.h"
#include "obs/instrument.h"

namespace segroute::fpga {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

// One net's trunk: physical span, extended span (the Section IV-A
// capacity coordinates), and the adjacent-channel range it may live in.
struct Trunk {
  int net = -1;
  Column left = 0, right = 0;    // physical span (routed coordinates)
  Column eleft = 0, eright = 0;  // extended to segment boundaries
  int ch_lo = 0, ch_hi = 0;      // candidate channels [ch_lo, ch_hi]
};

// Fingerprint of a per-track price table, quantized so that bit-equal
// behavior maps to one tag. Never returns 0 (the reserved "untagged"
// value that bypasses the engine cache).
std::uint64_t price_tag(const std::vector<double>& price) {
  std::uint64_t h = kFnvOffset;
  for (double p : price) {
    h = fnv_mix(h, static_cast<std::uint64_t>(std::llround(p * 1e9)));
  }
  return h == 0 ? 1 : h;
}

}  // namespace

FabricRouter::FabricRouter(
    const DeviceSpec& dev, const Netlist& nl, const Placement& p,
    std::function<SegmentedChannel(int tracks, Column width)> make_channel)
    : dev_(dev), nl_(&nl), p_(&p), make_channel_(std::move(make_channel)) {}

FabricResult FabricRouter::route(int tracks, const FabricOptions& opts) const {
  SEGROUTE_SPAN(fabric_span, "fabric.route", "tracks",
                static_cast<std::uint64_t>(tracks > 0 ? tracks : 0));
  SEGROUTE_COUNT("fabric.routes", 1);

  FabricResult res;
  const int C = dev_.num_channels();
  const Column width = dev_.columns();
  res.channel_of_net.assign(static_cast<std::size_t>(nl_->num_nets()), -1);
  res.per_channel.assign(static_cast<std::size_t>(C), {});
  res.net_of_conn.assign(static_cast<std::size_t>(C), {});
  res.routings.assign(static_cast<std::size_t>(C), Routing{});
  res.channels.assign(static_cast<std::size_t>(C), {});
  for (int c = 0; c < C; ++c) res.channels[static_cast<std::size_t>(c)].channel = c;

  if (tracks < 1) {
    res.note = "fabric: tracks must be >= 1";
    return res;
  }
  if (!make_channel_) {
    res.note = "fabric: no channel factory";
    return res;
  }
  if (p_->rows != dev_.rows || p_->slots_per_row != dev_.slots_per_row ||
      static_cast<int>(p_->pos.size()) < nl_->num_cells()) {
    res.note = "fabric: placement grid != device grid";
    return res;
  }
  const SegmentedChannel sub = make_channel_(tracks, width);
  if (sub.width() != width || sub.num_tracks() != tracks) {
    res.note = "fabric: channel factory shape mismatch";
    return res;
  }

  // --- Trunk geometry (once per route): physical spans from the
  // placement, extended spans from the substrate's segment boundaries.
  const ChannelIndex idx(sub);
  const int ntypes = idx.num_types();
  std::vector<Trunk> trunks;
  trunks.reserve(static_cast<std::size_t>(nl_->num_nets()));
  for (int n = 0; n < nl_->num_nets(); ++n) {
    const CellNet& net = nl_->net(n);
    if (net.cells.empty()) continue;  // channel_of_net stays -1
    Trunk t;
    t.net = n;
    t.left = width;
    t.right = 1;
    t.ch_lo = dev_.rows;
    t.ch_hi = 0;
    for (int cell : net.cells) {
      const Column col = dev_.pin_column(p_->slot_of(cell));
      t.left = std::min(t.left, col);
      t.right = std::max(t.right, col);
      t.ch_lo = std::min(t.ch_lo, p_->row_of(cell));
      t.ch_hi = std::max(t.ch_hi, p_->row_of(cell));
    }
    t.ch_hi += 1;  // row r touches channels r (above) and r+1 (below)
    // Extended span: widen to the segment boundaries of the track class
    // that extends the net least (ties to the lowest class id).
    Column best_len = std::numeric_limits<Column>::max();
    for (int ty = 0; ty < ntypes; ++ty) {
      const TrackId rep = idx.representative(ty);
      const Column el = idx.seg_left(rep, idx.segment_at(rep, t.left));
      const Column er = idx.seg_right(rep, idx.segment_at(rep, t.right));
      if (er - el < best_len) {
        best_len = er - el;
        t.eleft = el;
        t.eright = er;
      }
    }
    trunks.push_back(t);
  }
  // Assignment order: longest physical span first (fewest good homes),
  // net id breaking ties — fixed across iterations, threads, cache modes.
  std::vector<int> order(trunks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const Trunk& ta = trunks[static_cast<std::size_t>(a)];
    const Trunk& tb = trunks[static_cast<std::size_t>(b)];
    if (ta.right - ta.left != tb.right - tb.left) {
      return ta.right - ta.left > tb.right - tb.left;
    }
    return ta.net < tb.net;
  });

  // --- Negotiation state.
  const int max_iter = std::max(1, opts.max_iterations);
  std::vector<std::vector<double>> h(
      static_cast<std::size_t>(C),
      std::vector<double>(static_cast<std::size_t>(width) + 1, 0.0));
  std::vector<std::vector<double>> lam(
      static_cast<std::size_t>(C),
      std::vector<double>(static_cast<std::size_t>(ntypes), 0.0));
  std::vector<std::vector<int>> demand(
      static_cast<std::size_t>(C),
      std::vector<int>(static_cast<std::size_t>(width) + 1, 0));

  // --- One shared engine for the whole fabric: all channels route on the
  // same substrate, so every part everywhere shares one index, one
  // scratch pool, one sharded memo cache.
  engine::BatchOptions bo;
  bo.threads = opts.threads;
  bo.use_cache = opts.use_cache;
  bo.cache_capacity = opts.cache_capacity;
  bo.cache_shards = opts.cache_shards;
  engine::BatchRouter eng(sub, bo);

  // Deterministic per-channel budget slices: the fabric allowance divided
  // by the worst-case number of channel routings. A channel that splits
  // into parts divides its slice further, so the global bound holds.
  harness::Budget channel_slice;
  const std::uint64_t denom =
      static_cast<std::uint64_t>(max_iter) * static_cast<std::uint64_t>(C);
  if (opts.budget.max_ticks != 0) {
    channel_slice.max_ticks = std::max<std::uint64_t>(1, opts.budget.max_ticks / denom);
  }
  if (opts.budget.deadline) {
    channel_slice.deadline = std::max(std::chrono::milliseconds(1),
                                      *opts.budget.deadline /
                                          static_cast<std::int64_t>(denom));
  }
  channel_slice.cancel = opts.budget.cancel;

  bool budget_hit = false;
  for (int it = 0; it < max_iter; ++it) {
    SEGROUTE_COUNT("fabric.iterations", 1);
    res.iterations = it + 1;

    // 1. ASSIGN (serial, deterministic): cheapest adjacent channel under
    // history + would-be present overuse + Lagrangian channel pressure,
    // all measured on extended spans.
    for (auto& row : demand) std::fill(row.begin(), row.end(), 0);
    std::vector<double> lam_ch(static_cast<std::size_t>(C), 0.0);
    for (int c = 0; c < C; ++c) {
      double sum = 0.0;
      for (int ty = 0; ty < ntypes; ++ty) {
        sum += lam[static_cast<std::size_t>(c)][static_cast<std::size_t>(ty)] *
               static_cast<double>(idx.tracks_of_type(ty).size());
      }
      lam_ch[static_cast<std::size_t>(c)] = sum / static_cast<double>(tracks);
    }
    for (int oi : order) {
      Trunk& t = trunks[static_cast<std::size_t>(oi)];
      int best_c = t.ch_lo;
      double best_cost = std::numeric_limits<double>::max();
      for (int c = t.ch_lo; c <= t.ch_hi; ++c) {
        const auto& hc = h[static_cast<std::size_t>(c)];
        const auto& dc = demand[static_cast<std::size_t>(c)];
        double cost =
            static_cast<double>(t.right - t.left + 1) * lam_ch[static_cast<std::size_t>(c)];
        for (Column col = t.eleft; col <= t.eright; ++col) {
          const int over =
              std::max(0, dc[static_cast<std::size_t>(col)] + 1 - tracks);
          cost += (1.0 + hc[static_cast<std::size_t>(col)]) *
                  (1.0 + opts.present_factor * over);
        }
        if (cost < best_cost) {
          best_cost = cost;
          best_c = c;
        }
      }
      res.channel_of_net[static_cast<std::size_t>(t.net)] = best_c;
      auto& dc = demand[static_cast<std::size_t>(best_c)];
      for (Column col = t.eleft; col <= t.eright; ++col) {
        ++dc[static_cast<std::size_t>(col)];
      }
    }

    // Materialize per-channel connection sets, nets in id order.
    for (int c = 0; c < C; ++c) {
      res.per_channel[static_cast<std::size_t>(c)] = ConnectionSet{};
      res.net_of_conn[static_cast<std::size_t>(c)].clear();
    }
    for (const Trunk& t : trunks) {
      const int c = res.channel_of_net[static_cast<std::size_t>(t.net)];
      res.per_channel[static_cast<std::size_t>(c)].add(t.left, t.right,
                                                       nl_->net(t.net).name);
      res.net_of_conn[static_cast<std::size_t>(c)].push_back(t.net);
    }

    // 2. ROUTE all channels concurrently: decompose each channel at safe
    // columns and feed every part as one instance of a single
    // route_many() sweep with per-instance (λ-priced) options.
    struct Inst {
      int channel = 0;
      std::vector<ConnId> ids;  // part ids within the channel's set
    };
    std::vector<Inst> inst;
    std::vector<ConnectionSet> batch;
    std::vector<engine::EngineRouteOptions> batch_opts;
    for (int c = 0; c < C; ++c) {
      const ConnectionSet& cs = res.per_channel[static_cast<std::size_t>(c)];
      if (cs.empty()) continue;
      std::vector<std::vector<ConnId>> parts;
      if (opts.decompose) {
        parts = alg::split_parts(sub, cs);
      } else {
        parts.emplace_back(static_cast<std::size_t>(cs.size()));
        std::iota(parts.back().begin(), parts.back().end(), ConnId{0});
      }
      // λ pricing only when the multipliers differentiate the classes —
      // a uniform λ shifts every complete routing equally and belongs to
      // the assignment cost alone.
      const auto& lc = lam[static_cast<std::size_t>(c)];
      const auto [lo_it, hi_it] = std::minmax_element(lc.begin(), lc.end());
      const bool priced = ntypes > 1 && *hi_it - *lo_it > 1e-12;
      engine::EngineRouteOptions eo;
      eo.router = opts.router;
      eo.budget = channel_slice;
      if (channel_slice.max_ticks != 0 && parts.size() > 1) {
        eo.budget.max_ticks = std::max<std::uint64_t>(
            1, channel_slice.max_ticks / parts.size());
      }
      if (channel_slice.deadline && parts.size() > 1) {
        eo.budget.deadline =
            std::max(std::chrono::milliseconds(1),
                     *channel_slice.deadline /
                         static_cast<std::int64_t>(parts.size()));
      }
      if (priced) {
        auto price = std::make_shared<std::vector<double>>(
            static_cast<std::size_t>(tracks));
        for (TrackId tr = 0; tr < tracks; ++tr) {
          (*price)[static_cast<std::size_t>(tr)] =
              lc[static_cast<std::size_t>(idx.type_of()[static_cast<std::size_t>(tr)])];
        }
        eo.weight_tag = price_tag(*price);
        eo.custom_weight = [price](const SegmentedChannel&, const Connection&,
                                   TrackId tr) {
          return (*price)[static_cast<std::size_t>(tr)];
        };
      }
      for (auto& part : parts) {
        ConnectionSet pcs;
        for (ConnId id : part) pcs.add(cs[id].left, cs[id].right, cs[id].name);
        batch.push_back(std::move(pcs));
        batch_opts.push_back(eo);
        inst.push_back(Inst{c, std::move(part)});
      }
    }
    const std::vector<alg::RouteResult> routed = eng.route_many(batch, batch_opts);

    // 3. STITCH parts back into per-channel routings and reports.
    for (int c = 0; c < C; ++c) {
      auto& rep = res.channels[static_cast<std::size_t>(c)];
      rep.connections = res.per_channel[static_cast<std::size_t>(c)].size();
      rep.density = res.per_channel[static_cast<std::size_t>(c)].density();
      rep.routed = true;
      rep.failure = alg::FailureKind::kNone;
      rep.weight = 0.0;
      res.routings[static_cast<std::size_t>(c)] =
          Routing(res.per_channel[static_cast<std::size_t>(c)].size());
    }
    for (std::size_t i = 0; i < inst.size(); ++i) {
      auto& rep = res.channels[static_cast<std::size_t>(inst[i].channel)];
      const alg::RouteResult& pr = routed[i];
      if (pr.success) {
        Routing& r = res.routings[static_cast<std::size_t>(inst[i].channel)];
        for (std::size_t j = 0; j < inst[i].ids.size(); ++j) {
          r.assign(inst[i].ids[j], pr.routing.track_of(static_cast<ConnId>(j)));
        }
        rep.weight += pr.weight;
      } else if (rep.routed) {
        rep.routed = false;
        rep.failure = pr.failure;  // first failing part, part order fixed
      }
    }
    bool all_routed = true;
    budget_hit = false;
    for (const auto& rep : res.channels) {
      all_routed = all_routed && rep.routed;
      budget_hit =
          budget_hit || rep.failure == alg::FailureKind::kBudgetExhausted;
    }
    if (all_routed) {
      res.success = true;
      break;
    }
    if (budget_hit || it + 1 == max_iter) break;

    // 4. PRICE: history on the failed channels' congested columns,
    // λ sub-gradient per (channel, class) — scarce classes on routed
    // channels get priced, relaxed classes decay toward free.
    for (int c = 0; c < C; ++c) {
      auto& lc = lam[static_cast<std::size_t>(c)];
      const auto& rep = res.channels[static_cast<std::size_t>(c)];
      if (rep.routed) {
        std::vector<int> use(static_cast<std::size_t>(ntypes), 0);
        const Routing& r = res.routings[static_cast<std::size_t>(c)];
        for (ConnId i = 0; i < r.size(); ++i) {
          ++use[static_cast<std::size_t>(
              idx.type_of()[static_cast<std::size_t>(r.track_of(i))])];
        }
        for (int ty = 0; ty < ntypes; ++ty) {
          const double members =
              static_cast<double>(idx.tracks_of_type(ty).size());
          const double cap = opts.lambda_capacity_slack * members;
          double& l = lc[static_cast<std::size_t>(ty)];
          if (use[static_cast<std::size_t>(ty)] > cap) {
            l += opts.lambda_step *
                 (use[static_cast<std::size_t>(ty)] - cap) / members;
          } else {
            l = std::max(0.0, l - 0.5 * opts.lambda_step);
          }
        }
      } else {
        auto& hc = h[static_cast<std::size_t>(c)];
        const auto& dc = demand[static_cast<std::size_t>(c)];
        bool had_over = false;
        int maxd = 0;
        for (Column col = 1; col <= width; ++col) {
          const int over = dc[static_cast<std::size_t>(col)] - tracks;
          maxd = std::max(maxd, dc[static_cast<std::size_t>(col)]);
          if (over > 0) {
            hc[static_cast<std::size_t>(col)] += opts.history_gain * over;
            had_over = true;
          }
        }
        if (!had_over && maxd > 0) {
          // Segmentation-induced shortfall: no column is over capacity
          // yet routing failed, so pressure the densest window.
          for (Column col = 1; col <= width; ++col) {
            if (dc[static_cast<std::size_t>(col)] == maxd) {
              hc[static_cast<std::size_t>(col)] += opts.history_gain;
            }
          }
        }
        // A failed channel also gets uniformly more expensive to enter.
        for (double& l : lc) l += opts.lambda_step;
      }
    }
  }

  if (!res.success) {
    res.note = budget_hit
                   ? "fabric: budget exhausted before convergence"
                   : "fabric: not congestion-free within iteration cap";
  }
  res.cache = eng.cache_stats();

  // Digest over everything the determinism contract covers (assignment,
  // routings, outcome) — cache counters deliberately excluded.
  std::uint64_t d = kFnvOffset;
  d = fnv_mix(d, res.success ? 1 : 0);
  d = fnv_mix(d, static_cast<std::uint64_t>(res.iterations));
  d = fnv_mix(d, static_cast<std::uint64_t>(tracks));
  d = fnv_mix(d, static_cast<std::uint64_t>(C));
  for (int c : res.channel_of_net) {
    d = fnv_mix(d, static_cast<std::uint64_t>(c + 1));
  }
  for (int c = 0; c < C; ++c) {
    const Routing& r = res.routings[static_cast<std::size_t>(c)];
    d = fnv_mix(d, static_cast<std::uint64_t>(r.size()));
    for (ConnId i = 0; i < r.size(); ++i) {
      d = fnv_mix(d, static_cast<std::uint64_t>(r.track_of(i) + 1));
    }
    d = fnv_mix(d, static_cast<std::uint64_t>(
                       res.channels[static_cast<std::size_t>(c)].failure));
  }
  res.digest = d;

  std::uint64_t failed = 0;
  for (const auto& rep : res.channels) failed += rep.routed ? 0 : 1;
  SEGROUTE_COUNT("fabric.failed_channels", failed);
  SEGROUTE_GAUGE_MAX("fabric.iterations_max", static_cast<std::uint64_t>(res.iterations));
  return res;
}

FabricResult FabricRouter::route_independent(int tracks,
                                             const FabricOptions& opts) const {
  FabricOptions o = opts;
  o.max_iterations = 1;
  return route(tracks, o);
}

std::optional<int> FabricRouter::min_fabric_tracks(
    int track_limit, const FabricOptions& opts) const {
  // Wire-capacity lower bound: total trunk wirelength over the fabric's
  // horizontal capacity per track layer (C channels x width columns).
  std::int64_t wire = 0;
  for (int n = 0; n < nl_->num_nets(); ++n) {
    const CellNet& net = nl_->net(n);
    if (net.cells.empty()) continue;
    Column lo = dev_.columns(), hi = 1;
    for (int cell : net.cells) {
      const Column col = dev_.pin_column(p_->slot_of(cell));
      lo = std::min(lo, col);
      hi = std::max(hi, col);
    }
    wire += hi - lo + 1;
  }
  const std::int64_t layer =
      static_cast<std::int64_t>(dev_.num_channels()) * dev_.columns();
  const int lb = std::max<std::int64_t>(1, (wire + layer - 1) / layer);
  for (int t = lb; t <= track_limit; ++t) {
    const FabricResult r = route(t, opts);
    if (r.success) return t;
    for (const auto& rep : r.channels) {
      if (rep.failure == alg::FailureKind::kBudgetExhausted) return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace segroute::fpga
