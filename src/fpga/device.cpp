#include "fpga/device.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "alg/dp.h"

namespace segroute::fpga {

GlobalRoute global_route(const DeviceSpec& dev, const Netlist& nl,
                         const Placement& p) {
  if (p.rows != dev.rows || p.slots_per_row != dev.slots_per_row) {
    throw std::invalid_argument("global_route: placement grid != device grid");
  }
  struct Trunk {
    int net = 0;
    Column left = 0, right = 0;
    int row_lo = 0, row_hi = 0;
  };
  std::vector<Trunk> trunks;
  trunks.reserve(static_cast<std::size_t>(nl.num_nets()));
  for (int i = 0; i < nl.num_nets(); ++i) {
    const CellNet& net = nl.net(i);
    Trunk t;
    t.net = i;
    t.left = dev.columns();
    t.right = 1;
    t.row_lo = dev.rows;
    t.row_hi = 0;
    for (int c : net.cells) {
      const Column col = dev.pin_column(p.slot_of(c));
      t.left = std::min(t.left, col);
      t.right = std::max(t.right, col);
      t.row_lo = std::min(t.row_lo, p.row_of(c));
      t.row_hi = std::max(t.row_hi, p.row_of(c));
    }
    trunks.push_back(t);
  }
  // Longest trunks first: they have the fewest good homes.
  std::sort(trunks.begin(), trunks.end(), [](const Trunk& a, const Trunk& b) {
    return (a.right - a.left) > (b.right - b.left);
  });

  // Column load per channel for congestion-aware assignment.
  std::vector<std::vector<int>> load(
      static_cast<std::size_t>(dev.num_channels()),
      std::vector<int>(static_cast<std::size_t>(dev.columns()) + 1, 0));

  GlobalRoute gr;
  gr.channel_of_net.assign(static_cast<std::size_t>(nl.num_nets()), -1);
  gr.per_channel.assign(static_cast<std::size_t>(dev.num_channels()), {});
  gr.net_of_conn.assign(static_cast<std::size_t>(dev.num_channels()), {});

  for (const Trunk& t : trunks) {
    // Channels adjacent to the net's row range: row r touches channels r
    // (above) and r+1 (below).
    int best_ch = t.row_lo;
    int best_peak = std::numeric_limits<int>::max();
    for (int ch = t.row_lo; ch <= t.row_hi + 1; ++ch) {
      int peak = 0;
      for (Column c = t.left; c <= t.right; ++c) {
        peak = std::max(peak, load[static_cast<std::size_t>(ch)]
                                  [static_cast<std::size_t>(c)]);
      }
      if (peak < best_peak) {
        best_peak = peak;
        best_ch = ch;
      }
    }
    for (Column c = t.left; c <= t.right; ++c) {
      ++load[static_cast<std::size_t>(best_ch)][static_cast<std::size_t>(c)];
    }
    gr.channel_of_net[static_cast<std::size_t>(t.net)] = best_ch;
    gr.per_channel[static_cast<std::size_t>(best_ch)].add(
        t.left, t.right, nl.net(t.net).name);
    gr.net_of_conn[static_cast<std::size_t>(best_ch)].push_back(t.net);
  }
  return gr;
}

std::vector<ChannelReport> route_device(
    const DeviceSpec& dev, const GlobalRoute& gr,
    const std::function<SegmentedChannel(int, Column)>& make_channel,
    int track_limit, const DelayParams& delay_params) {
  std::vector<ChannelReport> reports;
  for (int ch = 0; ch < dev.num_channels(); ++ch) {
    const ConnectionSet& cs = gr.per_channel[static_cast<std::size_t>(ch)];
    ChannelReport rep;
    rep.channel = ch;
    rep.connections = cs.size();
    rep.density = cs.density();
    if (cs.empty()) {
      rep.tracks_used = 0;
      reports.push_back(rep);
      continue;
    }
    for (int t = std::max(1, rep.density); t <= track_limit; ++t) {
      const auto channel = make_channel(t, dev.columns());
      const auto r = alg::dp_route_unlimited(channel, cs);
      if (r.success) {
        rep.tracks_used = t;
        rep.delay = routing_delay(channel, cs, r.routing, delay_params);
        break;
      }
    }
    reports.push_back(rep);
  }
  return reports;
}

}  // namespace segroute::fpga
