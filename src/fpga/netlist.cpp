#include "fpga/netlist.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace segroute::fpga {

Netlist::Netlist(int num_cells, std::vector<CellNet> nets)
    : num_cells_(num_cells), nets_(std::move(nets)) {
  if (num_cells_ < 1) {
    throw std::invalid_argument("Netlist: need at least one cell");
  }
  for (const CellNet& n : nets_) {
    if (n.cells.size() < 2) {
      throw std::invalid_argument("Netlist: nets need at least two cells");
    }
    for (int c : n.cells) {
      if (c < 0 || c >= num_cells_) {
        throw std::invalid_argument("Netlist: cell id out of range");
      }
    }
    std::set<int> uniq(n.cells.begin(), n.cells.end());
    if (uniq.size() != n.cells.size()) {
      throw std::invalid_argument("Netlist: duplicate cell in one net");
    }
  }
}

Netlist random_netlist(int num_cells, int num_nets, int max_fanout,
                       int locality_window, std::mt19937_64& rng) {
  if (num_cells < 2 || num_nets < 0 || max_fanout < 2 ||
      locality_window < 2) {
    throw std::invalid_argument("random_netlist: bad parameters");
  }
  max_fanout = std::min(max_fanout, num_cells);
  locality_window = std::min(locality_window, num_cells);
  std::vector<CellNet> nets;
  nets.reserve(static_cast<std::size_t>(num_nets));
  std::uniform_int_distribution<int> fan(2, max_fanout);
  for (int i = 0; i < num_nets; ++i) {
    const int base = static_cast<int>(
        rng() % static_cast<unsigned>(num_cells - locality_window + 1));
    const int k = std::min(fan(rng), locality_window);
    std::set<int> cells;
    while (static_cast<int>(cells.size()) < k) {
      cells.insert(base + static_cast<int>(
                              rng() % static_cast<unsigned>(locality_window)));
    }
    CellNet n;
    n.cells.assign(cells.begin(), cells.end());
    n.name = "net" + std::to_string(i);
    nets.push_back(std::move(n));
  }
  return Netlist(num_cells, std::move(nets));
}

}  // namespace segroute::fpga
