// The channeled-FPGA device model of Fig. 1: rows of logic cells
// separated by segmented routing channels. Global routing turns a placed
// netlist into one horizontal trunk connection per net, assigned to one
// of the channels its pin rows can reach (pins reach the channels
// directly above and below their row through dedicated vertical
// segments; rows further away are crossed by vertical feedthroughs,
// which consume no horizontal track).
#pragma once

#include <functional>
#include <vector>

#include "core/channel.h"
#include "core/connection.h"
#include "fpga/delay.h"
#include "fpga/netlist.h"
#include "fpga/place.h"

namespace segroute::fpga {

struct DeviceSpec {
  int rows = 4;            // rows of logic cells
  int slots_per_row = 16;  // cells per row
  Column cell_width = 2;   // columns each cell occupies

  /// Number of routing channels (one above each row plus one below).
  [[nodiscard]] int num_channels() const { return rows + 1; }
  /// Channel width in columns.
  [[nodiscard]] Column columns() const { return slots_per_row * cell_width; }
  /// Column of the vertical pin segment of a cell slot (its center).
  [[nodiscard]] Column pin_column(int slot) const {
    return static_cast<Column>(slot) * cell_width + (cell_width + 1) / 2;
  }
};

/// Result of global routing: one trunk connection per net, grouped per
/// channel, with the mapping back to net ids.
struct GlobalRoute {
  std::vector<int> channel_of_net;            // per net
  std::vector<ConnectionSet> per_channel;     // trunk connections
  std::vector<std::vector<int>> net_of_conn;  // per channel: conn -> net id
};

/// Greedy congestion-aware global router: processes nets in decreasing
/// span order and assigns each to the channel (within the rows its pins
/// touch, +1 below) with the lowest current density over the net's span.
GlobalRoute global_route(const DeviceSpec& dev, const Netlist& nl,
                         const Placement& p);

/// Per-channel detailed-routing report for one segmentation scheme.
struct ChannelReport {
  int channel = 0;
  int connections = 0;
  int density = 0;
  int tracks_used = -1;  // smallest track count that routed, -1 if > limit
  DelayStats delay;      // at tracks_used
};

/// Routes every channel with the DP router on channels produced by
/// `make_channel(tracks)`, growing tracks until each channel routes (or
/// `track_limit` is hit). Reports per-channel results.
std::vector<ChannelReport> route_device(
    const DeviceSpec& dev, const GlobalRoute& gr,
    const std::function<SegmentedChannel(int tracks, Column width)>& make_channel,
    int track_limit, const DelayParams& delay_params = {});

}  // namespace segroute::fpga
