#include "fpga/delay.h"

#include <algorithm>
#include <stdexcept>

namespace segroute::fpga {

namespace {

/// One lumped element of the RC ladder.
struct Element {
  double r;
  double c;
};

/// Elmore delay of a ladder: sum over elements of (upstream R + r/2) * c,
/// plus the full upstream resistance seen by the sink load.
double elmore(const std::vector<Element>& path, double c_sink) {
  double r_up = 0.0;
  double delay = 0.0;
  for (const Element& e : path) {
    delay += (r_up + e.r / 2.0) * e.c;
    r_up += e.r;
  }
  delay += r_up * c_sink;
  return delay;
}

}  // namespace

double connection_delay(const SegmentedChannel& ch, const Connection& c,
                        TrackId t, const DelayParams& p) {
  const Track& tr = ch.track(t);
  auto [a, b] = tr.span(c.left, c.right);
  std::vector<Element> path;
  path.push_back({p.r_driver, 0.0});
  path.push_back({p.r_switch, p.c_switch});  // entry switch
  for (SegId s = a; s <= b; ++s) {
    const double len = static_cast<double>(tr.segment(s).length());
    path.push_back({p.r_wire * len, p.c_wire * len});
    if (s != b) path.push_back({p.r_switch, p.c_switch});  // joining switch
  }
  path.push_back({p.r_switch, p.c_switch});  // exit switch
  return elmore(path, p.c_sink);
}

double connection_delay(const SegmentedChannel& ch, const Connection& c,
                        const std::vector<RoutePart>& parts,
                        const DelayParams& p) {
  if (parts.empty()) {
    throw std::invalid_argument("connection_delay: empty generalized route");
  }
  (void)c;
  std::vector<Element> path;
  path.push_back({p.r_driver, 0.0});
  path.push_back({p.r_switch, p.c_switch});  // entry switch
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const RoutePart& part = parts[i];
    const Track& tr = ch.track(part.track);
    auto [a, b] = tr.span(part.left, part.right);
    for (SegId s = a; s <= b; ++s) {
      const double len = static_cast<double>(tr.segment(s).length());
      path.push_back({p.r_wire * len, p.c_wire * len});
      if (s != b) path.push_back({p.r_switch, p.c_switch});
    }
    if (i + 1 < parts.size()) {
      // A track change needs two programmed switches (through a vertical
      // jumper segment) instead of one.
      path.push_back({p.r_switch, p.c_switch});
      path.push_back({p.r_switch, p.c_switch});
    }
  }
  path.push_back({p.r_switch, p.c_switch});  // exit switch
  return elmore(path, p.c_sink);
}

DelayStats routing_delay(const SegmentedChannel& ch, const ConnectionSet& cs,
                         const Routing& r, const DelayParams& p) {
  if (r.size() != cs.size()) {
    throw std::invalid_argument("routing_delay: size mismatch");
  }
  DelayStats st;
  if (cs.size() == 0) return st;
  double sum = 0.0;
  for (ConnId i = 0; i < cs.size(); ++i) {
    if (!r.is_assigned(i)) {
      throw std::invalid_argument("routing_delay: incomplete routing");
    }
    const TrackId t = r.track_of(i);
    const double d = connection_delay(ch, cs[i], t, p);
    st.max_delay = std::max(st.max_delay, d);
    sum += d;
    st.total_wire +=
        static_cast<double>(ch.track(t).occupied_length(cs[i].left, cs[i].right));
    // Switches: entry + exit + (segments - 1) joins.
    const int switches = 1 + segments_used(ch, cs[i], t);
    st.max_switches = std::max(st.max_switches, switches);
  }
  st.mean_delay = sum / static_cast<double>(cs.size());
  return st;
}

}  // namespace segroute::fpga
