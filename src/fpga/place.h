// Placement of logical cells onto the row/slot grid of a channeled FPGA
// (Fig. 1), with a simulated-annealing optimizer minimizing half-
// perimeter wirelength. A better placement lowers channel densities and
// therefore the track counts the channel routers need.
#pragma once

#include <random>
#include <vector>

#include "core/types.h"
#include "fpga/netlist.h"

namespace segroute::fpga {

/// A placement: cell id -> (row, slot). rows * slots_per_row >= num_cells.
struct Placement {
  int rows = 0;
  int slots_per_row = 0;
  std::vector<std::pair<int, int>> pos;  // per cell

  [[nodiscard]] int row_of(int cell) const {
    return pos[static_cast<std::size_t>(cell)].first;
  }
  [[nodiscard]] int slot_of(int cell) const {
    return pos[static_cast<std::size_t>(cell)].second;
  }
};

/// Cells assigned to slots in id order (deterministic starting point).
Placement sequential_placement(const Netlist& nl, int rows, int slots_per_row);

/// Random permutation placement.
Placement random_placement(const Netlist& nl, int rows, int slots_per_row,
                           std::mt19937_64& rng);

/// Half-perimeter wirelength: for each net, (horizontal slot span) +
/// `row_weight` * (vertical row span). The standard placement objective.
double hpwl(const Netlist& nl, const Placement& p, double row_weight = 1.0);

struct AnnealOptions {
  int iterations = 20000;
  double t_start = 5.0;
  double t_end = 0.01;
  double row_weight = 2.0;  // vertical spans hurt more (feedthroughs)
};

/// Pairwise-swap simulated annealing from `start`. Returns the best
/// placement visited; deterministic for a fixed rng state.
Placement anneal_placement(const Netlist& nl, Placement start,
                           std::mt19937_64& rng, const AnnealOptions& opts = {});

}  // namespace segroute::fpga
