// First-order (Elmore) delay model for routed connections — the physics
// behind the paper's segmentation trade-off (Section I, Fig. 2):
// "all present technologies offer switches with significant resistance
// and capacitance ... enforcement of simple limits on the number of
// segments joined, or their total length, guarantees that the delay will
// not be unduly increased."
//
// A routed connection's path is modelled as an RC ladder:
//   driver -> entry switch -> segment 1 -> joining switch -> segment 2
//   -> ... -> exit switch -> sink load,
// with each occupied segment lumped as (r_wire * len, c_wire * len) and
// each programmed switch as (r_switch, c_switch). Delay is the Elmore sum
// over the ladder. Absolute values are arbitrary units; the *shape*
// (switch count vs capacitance trade-off) is what the experiments use.
#pragma once

#include "core/channel.h"
#include "core/connection.h"
#include "core/generalized.h"
#include "core/routing.h"

namespace segroute::fpga {

struct DelayParams {
  double r_driver = 1.0;   // output driver resistance
  double r_switch = 4.0;   // programmed-switch resistance (dominant in antifuse/pass-FET tech)
  double c_switch = 0.1;   // programmed-switch capacitance
  double r_wire = 0.05;    // metal resistance per column
  double c_wire = 0.2;     // metal capacitance per column
  double c_sink = 1.0;     // input pin load
};

/// Elmore delay of connection `c` assigned to track `t` (Definition 1
/// occupancy: all spanned segments are part of the path). Includes the
/// entry and exit switches of Fig. 1 plus one joining switch per extra
/// segment.
double connection_delay(const SegmentedChannel& ch, const Connection& c,
                        TrackId t, const DelayParams& p = {});

/// Elmore delay of a generalized route: each track change costs two
/// switches instead of one (Section II's hardware discussion).
double connection_delay(const SegmentedChannel& ch, const Connection& c,
                        const std::vector<RoutePart>& parts,
                        const DelayParams& p = {});

/// Aggregate delay statistics of a complete routing.
struct DelayStats {
  double max_delay = 0.0;
  double mean_delay = 0.0;
  double total_wire = 0.0;     // occupied columns, summed
  int max_switches = 0;        // most programmed switches on any net path
};

DelayStats routing_delay(const SegmentedChannel& ch, const ConnectionSet& cs,
                         const Routing& r, const DelayParams& p = {});

}  // namespace segroute::fpga
