#include "fpga/place.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace segroute::fpga {

namespace {

void check_grid(const Netlist& nl, int rows, int slots_per_row) {
  if (rows < 1 || slots_per_row < 1 ||
      rows * slots_per_row < nl.num_cells()) {
    throw std::invalid_argument("placement: grid too small for the netlist");
  }
}

/// HPWL contribution of a single net.
double net_hpwl(const CellNet& net, const Placement& p, double row_weight) {
  int min_slot = p.slots_per_row, max_slot = -1;
  int min_row = p.rows, max_row = -1;
  for (int c : net.cells) {
    min_slot = std::min(min_slot, p.slot_of(c));
    max_slot = std::max(max_slot, p.slot_of(c));
    min_row = std::min(min_row, p.row_of(c));
    max_row = std::max(max_row, p.row_of(c));
  }
  return static_cast<double>(max_slot - min_slot) +
         row_weight * static_cast<double>(max_row - min_row);
}

}  // namespace

Placement sequential_placement(const Netlist& nl, int rows, int slots_per_row) {
  check_grid(nl, rows, slots_per_row);
  Placement p;
  p.rows = rows;
  p.slots_per_row = slots_per_row;
  p.pos.reserve(static_cast<std::size_t>(nl.num_cells()));
  for (int c = 0; c < nl.num_cells(); ++c) {
    p.pos.emplace_back(c / slots_per_row, c % slots_per_row);
  }
  return p;
}

Placement random_placement(const Netlist& nl, int rows, int slots_per_row,
                           std::mt19937_64& rng) {
  check_grid(nl, rows, slots_per_row);
  std::vector<int> slots(static_cast<std::size_t>(rows * slots_per_row));
  std::iota(slots.begin(), slots.end(), 0);
  std::shuffle(slots.begin(), slots.end(), rng);
  Placement p;
  p.rows = rows;
  p.slots_per_row = slots_per_row;
  p.pos.reserve(static_cast<std::size_t>(nl.num_cells()));
  for (int c = 0; c < nl.num_cells(); ++c) {
    const int s = slots[static_cast<std::size_t>(c)];
    p.pos.emplace_back(s / slots_per_row, s % slots_per_row);
  }
  return p;
}

double hpwl(const Netlist& nl, const Placement& p, double row_weight) {
  double total = 0.0;
  for (const CellNet& net : nl.nets()) total += net_hpwl(net, p, row_weight);
  return total;
}

Placement anneal_placement(const Netlist& nl, Placement start,
                           std::mt19937_64& rng, const AnnealOptions& opts) {
  check_grid(nl, start.rows, start.slots_per_row);
  // Nets touching each cell, for incremental cost evaluation.
  std::vector<std::vector<int>> nets_of(
      static_cast<std::size_t>(nl.num_cells()));
  for (int i = 0; i < nl.num_nets(); ++i) {
    for (int c : nl.net(i).cells) {
      nets_of[static_cast<std::size_t>(c)].push_back(i);
    }
  }
  // Occupancy grid: slot -> cell or -1.
  const int total_slots = start.rows * start.slots_per_row;
  std::vector<int> cell_at(static_cast<std::size_t>(total_slots), -1);
  for (int c = 0; c < nl.num_cells(); ++c) {
    cell_at[static_cast<std::size_t>(start.row_of(c) * start.slots_per_row +
                                     start.slot_of(c))] = c;
  }

  Placement cur = std::move(start);
  Placement best = cur;
  double best_cost = hpwl(nl, cur, opts.row_weight);
  double cur_cost = best_cost;
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  const double cooling =
      std::pow(opts.t_end / opts.t_start,
               1.0 / std::max(1, opts.iterations - 1));
  double temp = opts.t_start;

  // Cost over the union of nets touching both cells (a net shared by the
  // two swapped cells must be counted once, not twice).
  std::vector<int> touched;
  std::vector<char> net_mark(static_cast<std::size_t>(nl.num_nets()), 0);
  auto gather = [&](int cell) {
    if (cell < 0) return;
    for (int ni : nets_of[static_cast<std::size_t>(cell)]) {
      if (!net_mark[static_cast<std::size_t>(ni)]) {
        net_mark[static_cast<std::size_t>(ni)] = 1;
        touched.push_back(ni);
      }
    }
  };
  auto touched_cost = [&]() {
    double c = 0.0;
    for (int ni : touched) c += net_hpwl(nl.net(ni), cur, opts.row_weight);
    return c;
  };

  for (int it = 0; it < opts.iterations; ++it, temp *= cooling) {
    const int s1 = static_cast<int>(rng() % static_cast<unsigned>(total_slots));
    const int s2 = static_cast<int>(rng() % static_cast<unsigned>(total_slots));
    if (s1 == s2) continue;
    const int c1 = cell_at[static_cast<std::size_t>(s1)];
    const int c2 = cell_at[static_cast<std::size_t>(s2)];
    if (c1 < 0 && c2 < 0) continue;

    for (int ni : touched) net_mark[static_cast<std::size_t>(ni)] = 0;
    touched.clear();
    gather(c1);
    gather(c2);
    const double before = touched_cost();
    auto apply = [&](int cell, int slot) {
      if (cell >= 0) {
        cur.pos[static_cast<std::size_t>(cell)] = {
            slot / cur.slots_per_row, slot % cur.slots_per_row};
      }
      cell_at[static_cast<std::size_t>(slot)] = cell;
    };
    apply(c1, s2);
    apply(c2, s1);
    const double after = touched_cost();
    const double delta = after - before;
    if (delta <= 0 || unit(rng) < std::exp(-delta / temp)) {
      cur_cost += delta;
      if (cur_cost < best_cost) {
        best_cost = cur_cost;
        best = cur;
      }
    } else {
      apply(c1, s1);  // revert
      apply(c2, s2);
    }
  }
  return best;
}

}  // namespace segroute::fpga
