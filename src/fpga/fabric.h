// FabricRouter: parallel multi-channel routing with negotiated
// congestion — the whole channeled-FPGA fabric of Fig. 1 as one routing
// problem instead of one channel at a time.
//
// A placed netlist induces one horizontal trunk per net, and every trunk
// can live in any channel adjacent to its pin rows (pins reach the
// channels directly above and below through dedicated verticals;
// feedthroughs cross further rows for free). The channels therefore
// *compete*: moving a net into a channel consumes that channel's track
// capacity everywhere the net spans. The paper routes each channel in
// isolation; this router closes the loop across channels with the
// relaxation schema of the sub-gradient / PathFinder family of parallel
// FPGA routers:
//
//   repeat (bounded by FabricOptions::max_iterations):
//     1. ASSIGN   every net to the cheapest adjacent channel under the
//                 current congestion costs (serial, deterministic);
//     2. ROUTE    all channels concurrently — each channel's connection
//                 set is split at safe columns (alg/decompose) and every
//                 part is a batch instance of one shared
//                 engine::BatchRouter over the common substrate;
//     3. PRICE    update the congestion costs from the outcome:
//                 column history for overused spans, per-(channel,
//                 track-class) Lagrangian multipliers for scarce
//                 segment classes — folded into the next iteration's
//                 detailed routing through the registry's weight hook;
//   until every channel routes (congestion-free) or the iteration cap
//   or budget is hit.
//
// Cost model. Capacity is measured in *extended spans* (Section IV-A):
// a net's span is widened to the segment boundaries of its
// best-fitting track class, so two nets that share no column but would
// occupy the same segment still see each other in the assignment cost.
// The assignment cost of net n in channel c is
//
//     sum over cols of ext(n):  (1 + h[c][col]) * (1 + P * over(col))
//   + len(n) * mean-lambda[c]
//
// where h is accumulated history, over(col) the would-be overuse versus
// the track count, P = FabricOptions::present_factor, and lambda the
// per-(channel, class) multipliers. Detailed routing minimizes
// sum lambda[c][class(track)] over the chosen tracks whenever the
// multipliers differentiate the classes — the Lagrangian term of the
// relaxed class-capacity constraint — so successive iterations steer
// nets away from scarce long segments before they fail.
//
// Determinism contract. For a fixed input and fixed options, the result
// — assignment, routings, iteration count, digest — is bit-identical
// for every thread count and with the engine cache on or off.
// Assignment and pricing are serial; routing goes through
// BatchRouter::route_many, whose results are thread-count and
// cache-mode invariant; budget *tick* slices are a function of the
// iteration cap and channel count only. A wall-clock deadline in
// FabricOptions::budget keeps the bound but (like every deadline)
// trades the bit-identity guarantee for timeliness.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "alg/result.h"
#include "core/channel.h"
#include "core/connection.h"
#include "core/routing.h"
#include "engine/batch.h"
#include "fpga/device.h"
#include "fpga/netlist.h"
#include "fpga/place.h"
#include "harness/budget.h"

namespace segroute::fpga {

struct FabricOptions {
  /// Worker threads for the concurrent channel sweep. Library-wide
  /// convention: 1 = serial, N > 1 = fixed, <= 0 = auto
  /// (util::hardware_threads()). Results are bit-identical across all
  /// values.
  int threads = 1;

  /// Negotiation iteration cap. Iteration 0 uses the uncongested greedy
  /// assignment (identical to route_independent), so a fabric that
  /// routes without negotiation converges in one iteration.
  int max_iterations = 16;

  /// Present-congestion factor P in the assignment cost: each would-be
  /// overused column multiplies its cost by (1 + P * overuse).
  double present_factor = 2.0;

  /// History increment per unit of overuse on a failed channel's
  /// columns (PathFinder's h_n accumulation).
  double history_gain = 1.0;

  /// Sub-gradient step for the per-(channel, track-class) Lagrangian
  /// multipliers.
  double lambda_step = 0.25;

  /// Class utilization above which a successfully routed channel's
  /// class is priced (fraction of the class's member tracks).
  double lambda_capacity_slack = 0.9;

  /// Registry router that routes each channel part ("dp" = exact).
  std::string router = "dp";

  /// Split each channel's connection set at safe columns
  /// (alg::split_parts) and route the parts as independent batch
  /// instances — more parallel grains and better memo-cache reuse.
  bool decompose = true;

  /// Engine memo cache over the shared substrate.
  bool use_cache = true;
  std::size_t cache_capacity = 1024;
  int cache_shards = 16;

  /// Whole-fabric resource bounds. max_ticks is divided into
  /// deterministic per-instance slices: max_ticks / (max_iterations *
  /// num_channels), at least 1. A deadline is sliced the same way but
  /// is inherently wall-clock-jittery (see the determinism contract).
  harness::Budget budget;
};

/// Per-channel outcome of a fabric route.
struct FabricChannelReport {
  int channel = 0;
  int connections = 0;
  int density = 0;  // plain column density of the final assignment
  bool routed = false;
  alg::FailureKind failure = alg::FailureKind::kNone;  // kNone iff routed
  double weight = 0.0;  // total Lagrangian price paid (0 when unpriced)
};

/// Outcome of a fabric route: the negotiated assignment, one routing per
/// channel, per-channel reports, and a deterministic digest for
/// bit-identity checks across thread counts and cache modes.
struct FabricResult {
  bool success = false;  // every channel routed (congestion-free)
  int iterations = 0;    // negotiation iterations executed (>= 1)

  std::vector<int> channel_of_net;            // per net; -1 = empty net
  std::vector<ConnectionSet> per_channel;     // trunk connections
  std::vector<std::vector<int>> net_of_conn;  // per channel: conn -> net
  std::vector<Routing> routings;              // per channel (ids match
                                              // per_channel)
  std::vector<FabricChannelReport> channels;

  engine::CacheStats cache;  // engine counters (excluded from digest)
  std::uint64_t digest = 0;  // FNV over assignment + routings + outcome
  std::string note;

  explicit operator bool() const { return success; }
};

/// Routes a placed netlist over the channel fabric of a DeviceSpec. The
/// netlist and placement are borrowed and must outlive the router; the
/// factory builds the per-channel substrate (all channels of a fabric
/// share one segmentation, so one SegmentedChannel — and one
/// BatchRouter, one ChannelIndex, one sharded memo cache — serves every
/// channel).
class FabricRouter {
 public:
  FabricRouter(const DeviceSpec& dev, const Netlist& nl, const Placement& p,
               std::function<SegmentedChannel(int tracks, Column width)>
                   make_channel);

  /// Negotiated fabric routing at the given per-channel track count.
  [[nodiscard]] FabricResult route(int tracks,
                                   const FabricOptions& opts = {}) const;

  /// The non-negotiated baseline: the iteration-0 greedy assignment,
  /// each channel routed once, no cost updates. Exactly route() with
  /// max_iterations = 1 — which is why the negotiated result can never
  /// need more tracks than the independent one.
  [[nodiscard]] FabricResult route_independent(
      int tracks, const FabricOptions& opts = {}) const;

  /// Smallest track count (scanned up from a wire-capacity lower bound)
  /// for which route() succeeds, or nullopt if none within track_limit.
  [[nodiscard]] std::optional<int> min_fabric_tracks(
      int track_limit, const FabricOptions& opts = {}) const;

  [[nodiscard]] const DeviceSpec& device() const { return dev_; }

 private:
  DeviceSpec dev_;
  const Netlist* nl_;
  const Placement* p_;
  std::function<SegmentedChannel(int, Column)> make_channel_;
};

}  // namespace segroute::fpga
