// BatchRouter: a memoizing, multi-threaded front end for repeated
// routing on one channel.
//
// FPGA-style workloads route the *same* segmented channel over and over
// — capacity probes re-route under growing prefixes, the portfolio
// router races several strategies on one instance, Monte-Carlo
// routability draws thousands of random connection sets. The direct
// path pays full price each time: class derivation, segment binary
// searches, workspace allocation, and — when instances repeat — the
// whole DP again for an answer already computed.
//
// The engine stacks three layers on the shared ChannelIndex:
//
//   1. the index itself, built once per BatchRouter and threaded into
//      every router call (O(1) segment lookups, prebuilt type classes);
//   2. per-thread scratch arenas (engine/scratch.h), so steady-state
//      calls are allocation-free;
//   3. a bounded, *sharded* LRU memo cache keyed by (channel
//      fingerprint, router name, connection sequence, routing options),
//      with hit/miss/eviction counters merged across shards.
//
// Cache sharding. One mutex in front of the memo cache serializes every
// worker of a parallel sweep — the fabric router (fpga/fabric.h) routes
// all channels of a device through one BatchRouter, and past ~2 threads
// the single lock, not the routing, becomes the bottleneck. The cache is
// therefore split into `BatchOptions::cache_shards` independent LRU
// shards selected by the key hash; each shard has its own mutex, list
// and map. The capacity bound stays global-equivalent — the configured
// capacity is distributed over the shards, so the total resident entries
// never exceed it — but the LRU *order* is per shard: with more than one
// shard, eviction approximates global LRU (an entry is evicted by
// pressure within its own shard). `cache_shards = 1` restores the exact
// single-lock global-LRU behavior. Hit/miss determinism is unaffected:
// for a replayed workload that fits in capacity, sharded and unsharded
// caches produce identical stats, and results are bit-identical always.
//
// Routing dispatches through alg::registry() — EngineRouteOptions names
// the router ("dp" by default), so the same engine front end serves any
// registered strategy.
//
// Determinism contract. route() and route_many() return results
// bit-identical to the named router's direct path, for every thread
// count and with the cache on or off:
//   - cache keys compare the exact connection sequence (the hash is
//     permutation-invariant, the equality is not), so an id-permuted
//     instance can never be served another permutation's routing;
//   - only *pure* results — success or proven infeasibility under an
//     unlimited budget — are cached; budget-limited calls bypass the
//     cache entirely in both directions (unless the caller opts into
//     read-only service via allow_cached_when_budgeted, which can only
//     substitute the exact unlimited answer);
//   - route_many() partitions statically (instance i's result never
//     depends on scheduling); only the cache *counters* may vary with
//     thread interleaving, never the results.
//
// Degradation support (the survivability layer, harness/chaos.h):
// rebind() re-points the engine at a structurally different channel —
// typically a FaultPlan-degraded one — rebuilding the shared index while
// *keeping* the memo cache. Entries are keyed by the substrate
// fingerprint (it participates in key equality, not just the hash), so
// entries from other substrates can never be served wrongly, and
// returning to a previously seen substrate re-hits its entries — that is
// what makes recovery after a storm cheap. invalidate(fingerprint)
// evicts exactly the entries of one substrate (fingerprint-delta-aware:
// a storm only invalidates what it touched).
#pragma once

#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "alg/result.h"
#include "core/channel_index.h"
#include "core/connection.h"
#include "core/weights.h"
#include "harness/budget.h"
#include "util/pool.h"

namespace segroute::engine {

/// Hashable weight selection for the memo cache (a raw WeightFn is an
/// opaque std::function and cannot key a cache). kNone = feasibility
/// routing (Problems 1/2); the rest name the catalog in core/weights.h.
enum class WeightKind {
  kNone = 0,
  kOccupiedLength,
  kSegmentCount,
  kWastedLength,
  kUnit,
};

const char* to_string(WeightKind k);

/// The WeightFn a WeightKind names (kNone yields an empty optional).
std::optional<WeightFn> make_weight(WeightKind k);

/// Per-instance routing options understood by the engine (the hashable
/// subset of a RouteRequest).
struct EngineRouteOptions {
  /// Which registered router (alg::registry() name) routes the instance.
  /// The memo cache is keyed on it, so one BatchRouter can serve mixed
  /// strategies without cross-serving results. An unknown name yields
  /// FailureKind::kInvalidInput.
  std::string router = "dp";

  /// 0 = unlimited-segment routing; K > 0 = K-segment routing.
  int max_segments = 0;

  /// Optimization objective (Problem 3) or kNone for feasibility.
  WeightKind weight = WeightKind::kNone;

  /// Custom weight hook: when set, overrides `weight`. This is how a
  /// caller folds per-instance pricing — e.g. the fabric router's
  /// Lagrangian congestion multipliers (fpga/fabric.h) — into the
  /// registry's weight contract while keeping the memo cache usable:
  /// `weight_tag` must uniquely fingerprint the function's *behavior*
  /// (e.g. a hash of the quantized price table), because the cache keys
  /// on the tag, not the closure. Tag 0 is reserved for "untagged": a
  /// custom weight with tag 0 bypasses the cache in both directions
  /// rather than risk cross-serving two functions under one key.
  std::optional<WeightFn> custom_weight;
  std::uint64_t weight_tag = 0;

  /// Per-instance resource bounds. A non-unlimited budget makes the call
  /// bypass the memo cache (budget-limited outcomes are not pure
  /// functions of the instance).
  harness::Budget budget;

  /// Opt-in relaxation of the budget/cache rule for service front ends
  /// (svc::RoutingService sets it): a budget-limited call may be *served
  /// from* the memo cache. Sound because cached entries are pure results
  /// — success or proven infeasibility computed under an unlimited
  /// budget — so a hit returns the exact unlimited answer instead of
  /// re-deriving a kBudgetExhausted. Results computed under a budget are
  /// still never inserted. Off by default: the strict "budget-limited
  /// calls bypass the cache in both directions" contract stays the
  /// engine's default behavior.
  bool allow_cached_when_budgeted = false;
};

/// Memo-cache observability counters (a snapshot; `size` <= `capacity`).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;  // entries evicted by invalidate()
  std::size_t size = 0;
  std::size_t capacity = 0;
};

struct BatchOptions {
  /// Worker threads for route_many. The library-wide convention
  /// (shared with alg::CapacityOptions::threads,
  /// fpga::FabricOptions::threads and svc::SvcOptions::threads):
  /// 1 = serial, N > 1 = fixed, and <= 0 = "auto" —
  /// util::hardware_threads(), the clamped hardware concurrency.
  /// Partitioning stays static and deterministic for every resolved
  /// value, so results never depend on the choice.
  int threads = 1;

  /// Enable the memo cache.
  bool use_cache = true;

  /// Maximum cached results; least-recently-used entries are evicted.
  std::size_t cache_capacity = 256;

  /// Number of independent cache shards (clamped to [1, 64] and to
  /// cache_capacity). 1 = one global LRU behind one mutex (the exact
  /// legacy behavior); the default 16 keeps parallel warm-hit streams
  /// from serializing on a single lock. See the file comment for the
  /// eviction-order caveat.
  int cache_shards = 16;

  /// Optional total wall-clock allowance for each route_many() call,
  /// divided evenly into per-instance deadline slices (instance budgets
  /// stay independent of thread count, preserving determinism up to
  /// deadline jitter). Unset = no batch-level deadline.
  std::optional<std::chrono::milliseconds> deadline;
};

/// Receipt from BatchRouter::rebind_delta(): the structural diff between
/// the old and new substrate and what happened to the old substrate's
/// memo entries.
struct RebindDelta {
  std::uint64_t old_fingerprint = 0;
  std::uint64_t new_fingerprint = 0;

  /// True when the substrates are not migration-comparable — different
  /// track count or width, or a changed identical-segmentation type
  /// partition (which can shift a canonicalizing router's tie-breaks
  /// even far from the edit). The rebind then behaved exactly like
  /// rebind(): entries stay cached under their old fingerprint.
  bool structural = false;

  /// The affected-column mask: interval hull of every segment adjacent
  /// to a changed switch, over the old AND new extents ([0, -1] = no
  /// structural difference). Cached results whose connection spans are
  /// disjoint from it are valid verbatim on the new substrate.
  Column affected_lo = 0;
  Column affected_hi = -1;

  std::size_t migrated = 0;  // entries re-keyed to the new fingerprint
  std::size_t evicted = 0;   // entries overlapping the mask, invalidated
};

class BatchRouter {
 public:
  /// Builds the shared index once. The channel must outlive the router.
  explicit BatchRouter(const SegmentedChannel& ch, BatchOptions opts = {});

  [[nodiscard]] const ChannelIndex& index() const { return index_; }
  [[nodiscard]] const BatchOptions& options() const { return opts_; }

  /// Routes one instance through the engine (index + thread scratch +
  /// memo cache), dispatching to the registered router named in the
  /// options. Bit-identical to calling that router's free function
  /// directly with the same options (the default "dp" matches dp_route).
  alg::RouteResult route(const ConnectionSet& cs,
                         const EngineRouteOptions& opts = {});

  /// Routes every instance, deterministically partitioned over the
  /// worker pool. results[i] corresponds to batch[i] and is independent
  /// of the thread count.
  std::vector<alg::RouteResult> route_many(
      const std::vector<ConnectionSet>& batch,
      const EngineRouteOptions& opts = {});

  /// As above but with per-instance options (opts[i] routes batch[i]) —
  /// the shape a fabric sweep needs, where every channel carries its own
  /// congestion-priced weight. opts.size() must equal batch.size();
  /// a mismatch returns kInvalidInput results without routing anything.
  std::vector<alg::RouteResult> route_many(
      const std::vector<ConnectionSet>& batch,
      const std::vector<EngineRouteOptions>& opts);

  /// Re-points the engine at `ch` (which must outlive it), rebuilding the
  /// shared index. The memo cache is kept: entries are fingerprint-keyed,
  /// so stale service is impossible and returning to a previously seen
  /// substrate re-hits its entries. Not thread-safe against concurrent
  /// route()/route_many() calls — quiesce the engine first.
  void rebind(const SegmentedChannel& ch);

  /// Delta-aware rebind: re-points the engine at `ch` like rebind(), but
  /// instead of stranding the old substrate's memo entries under a dead
  /// fingerprint, *migrates* the ones an edit provably did not touch.
  /// The structural diff of the two channels yields an affected-column
  /// mask (segments adjacent to changed switches, old and new extents);
  /// when the substrates are migration-comparable (same track count,
  /// width and type partition), entries whose connection spans are
  /// disjoint from the mask are re-keyed to the new fingerprint — every
  /// segment such a result can see is bit-identical in both channels,
  /// so the cached answer is the new substrate's answer — and entries
  /// overlapping the mask are evicted (counted as invalidations).
  /// Incomparable substrates degrade to plain rebind() semantics.
  /// Like rebind(): not thread-safe against concurrent routes.
  RebindDelta rebind_delta(const SegmentedChannel& ch);

  /// Evicts exactly the cache entries computed on the substrate with this
  /// fingerprint, leaving every other substrate's entries hot.
  void invalidate(std::uint64_t fingerprint);

  [[nodiscard]] CacheStats cache_stats() const;

  /// Per-shard snapshots, in shard order (the obs registry exposes these
  /// as svc.cache.shard<i>.* gauges via the routing service). Their field
  /// sums equal cache_stats() up to updates racing the walk.
  [[nodiscard]] std::vector<CacheStats> shard_stats() const;

  void clear_cache();

 private:
  struct CacheKey {
    std::string router;  // registry name the result came from
    std::uint64_t fingerprint = 0;  // substrate the result was computed on
    int max_segments = 0;
    WeightKind weight = WeightKind::kNone;
    std::uint64_t weight_tag = 0;  // custom-weight fingerprint (0 = none)
    std::vector<std::pair<Column, Column>> conns;  // exact sequence
    std::uint64_t hash = 0;  // permutation-invariant, precomputed

    friend bool operator==(const CacheKey& a, const CacheKey& b) {
      return a.fingerprint == b.fingerprint &&
             a.max_segments == b.max_segments && a.weight == b.weight &&
             a.weight_tag == b.weight_tag && a.router == b.router &&
             a.conns == b.conns;
    }
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const {
      return static_cast<std::size_t>(k.hash);
    }
  };
  struct CacheEntry {
    CacheKey key;
    alg::RouteResult result;
  };

  /// One cache shard: an independent bounded LRU behind its own mutex.
  /// entries is most-recent-first; by_key points into it. Counters are
  /// per shard and summed by cache_stats().
  struct Shard {
    mutable std::mutex mu;
    std::list<CacheEntry> entries;
    std::unordered_map<CacheKey, std::list<CacheEntry>::iterator, CacheKeyHash>
        by_key;
    std::size_t capacity = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
  };

  [[nodiscard]] Shard& shard_of(std::uint64_t hash) {
    // Finalize (splitmix64) before selecting: the raw key hash sums
    // per-connection FNV terms whose bits 32..39 are nearly constant
    // for small column operands, so the previous `(hash >> 32) %
    // nshards` pinned every key of a typical small-channel workload to
    // ONE shard — an LRU thrashing that 1/16th of the nominal capacity.
    // The mix spreads all input bits into the selector; the map inside
    // the shard keeps using the unfinalized hash.
    std::uint64_t z = hash;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return *shards_[z % shards_.size()];
  }

  /// The cache hash as a pure function of the key fields — make_key()
  /// and rebind_delta()'s re-keying must agree bit for bit.
  static std::uint64_t key_hash(const CacheKey& key);

  CacheKey make_key(const ConnectionSet& cs,
                    const EngineRouteOptions& opts) const;
  alg::RouteResult route_one(const ConnectionSet& cs,
                             const EngineRouteOptions& opts,
                             const harness::Budget& budget);
  EngineRouteOptions sliced(const EngineRouteOptions& opts,
                            std::size_t batch_size) const;

  const SegmentedChannel* ch_;
  ChannelIndex index_;
  BatchOptions opts_;
  std::optional<WeightFn> weight_fns_[5];  // one per WeightKind, lazy-free
  util::ThreadPool pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace segroute::engine
