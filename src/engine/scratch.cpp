#include "engine/scratch.h"

#include "obs/instrument.h"

namespace segroute::engine {

Occupancy& Scratch::occupancy_for(const SegmentedChannel& ch,
                                  std::uint64_t fingerprint) {
  if (!occ_) {
    occ_.emplace(ch);
  } else {
    // rebind() updates the bound channel and clears in place; it re-checks
    // the per-track shape itself, so an (astronomically unlikely)
    // fingerprint collision still rebuilds correctly.
    occ_->rebind(ch);
  }
  if (occ_fp_ != fingerprint) {
    ++rebinds_;
    SEGROUTE_COUNT("engine.scratch.rebinds", 1);
    // Lossy by design: a double holds 53 of the 64 fingerprint bits.
    // Scratch::fingerprint() has the exact value.
    SEGROUTE_GAUGE_SET("engine.scratch.fingerprint", fingerprint);
  }
  occ_fp_ = fingerprint;
  SEGROUTE_GAUGE_MAX("engine.scratch.bytes_held", bytes_held());
  return *occ_;
}

Scratch& thread_scratch() {
  thread_local Scratch scratch;
  return scratch;
}

}  // namespace segroute::engine
