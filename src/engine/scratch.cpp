#include "engine/scratch.h"

namespace segroute::engine {

Occupancy& Scratch::occupancy_for(const SegmentedChannel& ch,
                                  std::uint64_t fingerprint) {
  if (!occ_) {
    occ_.emplace(ch);
  } else {
    // rebind() updates the bound channel and clears in place; it re-checks
    // the per-track shape itself, so an (astronomically unlikely)
    // fingerprint collision still rebuilds correctly.
    occ_->rebind(ch);
  }
  occ_fp_ = fingerprint;
  return *occ_;
}

Scratch& thread_scratch() {
  thread_local Scratch scratch;
  return scratch;
}

}  // namespace segroute::engine
