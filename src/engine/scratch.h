// Per-thread scratch arenas for the batch routing engine.
//
// Repeated routing on one channel spends a surprising share of its time
// in allocator traffic: every router call used to construct a fresh
// Occupancy and the DP rebuilt its frontier arena, dedup table and class
// tables from nothing. A Scratch bundles those reusable workspaces —
// one Occupancy, one alg::DpWorkspace — and `thread_scratch()` hands
// each thread its own thread-local instance, so the steady state of a
// batch run is allocation-free: vectors keep their capacity between
// calls and only grow when a larger channel shows up.
//
// Keying. The Occupancy workspace is keyed by the channel's
// ChannelIndex fingerprint: when consecutive calls carry the same
// fingerprint the rows are structurally guaranteed to match and are
// cleared in place; a different fingerprint rebinds (and, if the shape
// really changed, reallocates). Occupancy::rebind re-checks shape
// row-by-row regardless, so a fingerprint collision degrades to a
// correct rebuild, never to corruption.
//
// Thread safety: a Scratch is single-thread state. thread_scratch()
// returns the calling thread's own instance; never share one across
// threads or across nested router calls.
#pragma once

#include <cstdint>
#include <optional>

#include "alg/dp.h"
#include "core/channel_index.h"
#include "core/routing.h"

namespace segroute::engine {

class Scratch {
 public:
  /// The Occupancy workspace bound to `ch`, reset to all-free. When
  /// `fingerprint` matches the previous call's the rows are reused in
  /// place; otherwise the workspace is rebound to the new channel.
  Occupancy& occupancy_for(const SegmentedChannel& ch,
                           std::uint64_t fingerprint);

  /// As above, keyed and bound via a prebuilt index.
  Occupancy& occupancy_for(const ChannelIndex& idx) {
    return occupancy_for(idx.channel(), idx.fingerprint());
  }

  /// The thread's reusable DP workspace (see alg::DpWorkspace).
  [[nodiscard]] alg::DpWorkspace& dp() { return dp_; }

  /// Heap bytes currently retained across both workspaces (capacities,
  /// not sizes): the arena high-water mark this thread holds between
  /// routes. Zero until the first occupancy_for / dp() use.
  [[nodiscard]] std::size_t bytes_held() const {
    return (occ_ ? occ_->bytes_held() : 0) + alg::workspace_bytes(dp_);
  }

  /// Times occupancy_for() saw a different channel fingerprint than the
  /// previous call (including the first bind). Steady-state batch runs
  /// stay at 1.
  [[nodiscard]] std::uint64_t rebind_count() const { return rebinds_; }

  /// Fingerprint of the channel the occupancy workspace is currently
  /// bound to (0 before the first bind). Exact 64-bit value; the
  /// `engine.scratch.fingerprint` gauge carries it rounded to double.
  [[nodiscard]] std::uint64_t fingerprint() const { return occ_fp_; }

 private:
  std::optional<Occupancy> occ_;
  std::uint64_t occ_fp_ = 0;
  std::uint64_t rebinds_ = 0;
  alg::DpWorkspace dp_;
};

/// The calling thread's scratch (thread-local singleton; lives until
/// thread exit).
Scratch& thread_scratch();

}  // namespace segroute::engine
