#include "engine/batch.h"

#include <algorithm>
#include <limits>

#include "alg/registry.h"
#include "core/router.h"
#include "engine/scratch.h"
#include "obs/instrument.h"

namespace segroute::engine {

namespace {

std::uint64_t fnv_pair(Column l, Column r) {
  std::uint64_t h = 1469598103934665603ull;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(l));
  h *= 1099511628211ull;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(r));
  h *= 1099511628211ull;
  return h;
}

/// Cache-safe results are pure functions of (channel, instance, options):
/// success or proven infeasibility. Budget-limited and invalid-input
/// outcomes are not cached (the former depend on machine load, the
/// latter are cheap to recompute and carry no routing).
bool cacheable(const alg::RouteResult& r) {
  return r.success || r.failure == alg::FailureKind::kInfeasible;
}

}  // namespace

const char* to_string(WeightKind k) {
  switch (k) {
    case WeightKind::kNone:
      return "none";
    case WeightKind::kOccupiedLength:
      return "occupied-length";
    case WeightKind::kSegmentCount:
      return "segment-count";
    case WeightKind::kWastedLength:
      return "wasted-length";
    case WeightKind::kUnit:
      return "unit";
  }
  return "?";
}

std::optional<WeightFn> make_weight(WeightKind k) {
  switch (k) {
    case WeightKind::kNone:
      return std::nullopt;
    case WeightKind::kOccupiedLength:
      return weights::occupied_length();
    case WeightKind::kSegmentCount:
      return weights::segment_count();
    case WeightKind::kWastedLength:
      return weights::wasted_length();
    case WeightKind::kUnit:
      return weights::unit();
  }
  return std::nullopt;
}

BatchRouter::BatchRouter(const SegmentedChannel& ch, BatchOptions opts)
    : ch_(&ch), index_(ch), opts_(opts), pool_(opts.threads) {
  for (int k = 0; k < 5; ++k) {
    weight_fns_[k] = make_weight(static_cast<WeightKind>(k));
  }
  // Resolve the shard layout once: clamp to [1, 64], and never keep more
  // shards than capacity (a shard with capacity 0 could cache nothing and
  // would silently drop every entry routed to it). The configured
  // capacity is distributed across the shards so the global resident
  // bound is exactly cache_capacity.
  std::size_t nshards = static_cast<std::size_t>(
      std::clamp(opts_.cache_shards, 1, 64));
  if (opts_.cache_capacity > 0) {
    nshards = std::min(nshards, opts_.cache_capacity);
  }
  shards_.reserve(nshards);
  const std::size_t base = opts_.cache_capacity / nshards;
  const std::size_t rem = opts_.cache_capacity % nshards;
  for (std::size_t s = 0; s < nshards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->capacity = base + (s < rem ? 1 : 0);
  }
}

// Permutation-invariant hash (commutative combine over per-connection
// hashes, mixed with the options and the channel fingerprint) so the
// "connection multiset" lands in one bucket; equality still compares
// the exact sequence, because a routing maps connection *ids* to
// tracks and a permuted instance needs its own entry. A pure function
// of the key fields: rebind_delta() recomputes it when it re-keys a
// migrated entry to a new fingerprint.
std::uint64_t BatchRouter::key_hash(const CacheKey& key) {
  std::uint64_t h = key.fingerprint;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.max_segments))
       * 1099511628211ull;
  h ^= static_cast<std::uint64_t>(key.weight) * 1099511628211ull;
  h ^= key.weight_tag * 0x9e3779b97f4a7c15ull;
  for (const char c : key.router) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  for (const auto& [l, r] : key.conns) {
    h += fnv_pair(l, r);
  }
  return h;
}

BatchRouter::CacheKey BatchRouter::make_key(
    const ConnectionSet& cs, const EngineRouteOptions& opts) const {
  CacheKey key;
  key.router = opts.router;
  key.fingerprint = index_.fingerprint();
  key.max_segments = opts.max_segments;
  key.weight = opts.weight;
  key.weight_tag = opts.custom_weight ? opts.weight_tag : 0;
  key.conns.reserve(static_cast<std::size_t>(cs.size()));
  for (const Connection& c : cs.all()) {
    key.conns.emplace_back(c.left, c.right);
  }
  key.hash = key_hash(key);
  return key;
}

alg::RouteResult BatchRouter::route_one(const ConnectionSet& cs,
                                        const EngineRouteOptions& opts,
                                        const harness::Budget& budget) {
  Scratch& scratch = thread_scratch();
  RouteRequest rq;
  rq.channel = ch_;
  rq.connections = &cs;
  rq.context.index = &index_;
  rq.context.occupancy = &scratch.occupancy_for(index_);
  rq.dp_workspace = &scratch.dp();
  rq.options.max_segments = opts.max_segments;
  rq.options.weight = opts.custom_weight
                          ? opts.custom_weight
                          : weight_fns_[static_cast<int>(opts.weight)];
  rq.budget = budget;
  alg::RouteResult res = alg::route(opts.router, rq);
  // The scratch arenas grow during the route; record the retained
  // high-water mark after the fact.
  SEGROUTE_GAUGE_MAX("engine.scratch.bytes_held", scratch.bytes_held());
  return res;
}

alg::RouteResult BatchRouter::route(const ConnectionSet& cs,
                                    const EngineRouteOptions& opts) {
  SEGROUTE_SPAN(route_span, "engine.route", "fingerprint",
                index_.fingerprint());
  const bool pure = opts.budget.unlimited();
  const bool taggable = !opts.custom_weight || opts.weight_tag != 0;
  const bool cache_on =
      opts_.use_cache && taggable && opts_.cache_capacity != 0;
  // Budgeted calls may opt into cache *reads* (a cached entry is a pure
  // result, so serving it under a budget is exact); only pure results are
  // ever inserted below.
  if (!cache_on || (!pure && !opts.allow_cached_when_budgeted)) {
    return route_one(cs, opts, opts.budget);
  }
  CacheKey key = make_key(cs, opts);
  Shard& shard = shard_of(key.hash);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.by_key.find(key);
    if (it != shard.by_key.end()) {
      ++shard.hits;
      shard.entries.splice(shard.entries.begin(), shard.entries,
                           it->second);  // touch
      SEGROUTE_COUNT("engine.cache.hits", 1);
      return it->second->result;
    }
    ++shard.misses;
  }
  SEGROUTE_COUNT("engine.cache.misses", 1);
  alg::RouteResult res = route_one(cs, opts, opts.budget);
  if (pure && cacheable(res)) {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Another thread may have inserted the same key while we routed;
    // both computed identical results, so keeping the existing entry is
    // equivalent.
    if (shard.by_key.find(key) == shard.by_key.end()) {
      shard.entries.push_front(CacheEntry{std::move(key), res});
      shard.by_key.emplace(shard.entries.front().key, shard.entries.begin());
      while (shard.entries.size() > shard.capacity) {
        shard.by_key.erase(shard.entries.back().key);
        shard.entries.pop_back();
        ++shard.evictions;
        SEGROUTE_COUNT("engine.cache.evictions", 1);
      }
    }
  }
  return res;
}

// Per-instance budget: the caller's, tightened by an even slice of the
// batch deadline when one is configured. Slices are a function of the
// batch size only — not of the thread count — so results stay
// thread-count invariant (up to wall-clock jitter inherent in any
// deadline).
EngineRouteOptions BatchRouter::sliced(const EngineRouteOptions& opts,
                                       std::size_t batch_size) const {
  EngineRouteOptions inst_opts = opts;
  if (opts_.deadline && batch_size > 0) {
    const auto slice = *opts_.deadline / static_cast<int>(batch_size);
    inst_opts.budget.deadline =
        inst_opts.budget.deadline ? std::min(*inst_opts.budget.deadline, slice)
                                  : slice;
  }
  return inst_opts;
}

std::vector<alg::RouteResult> BatchRouter::route_many(
    const std::vector<ConnectionSet>& batch, const EngineRouteOptions& opts) {
  std::vector<alg::RouteResult> results(batch.size());
  if (batch.empty()) return results;

  const EngineRouteOptions inst_opts = sliced(opts, batch.size());
  pool_.parallel_for(static_cast<std::int64_t>(batch.size()),
                     [&](std::int64_t i) {
                       results[static_cast<std::size_t>(i)] =
                           route(batch[static_cast<std::size_t>(i)], inst_opts);
                     });
  return results;
}

std::vector<alg::RouteResult> BatchRouter::route_many(
    const std::vector<ConnectionSet>& batch,
    const std::vector<EngineRouteOptions>& opts) {
  std::vector<alg::RouteResult> results(batch.size());
  if (batch.empty()) return results;
  if (opts.size() != batch.size()) {
    for (auto& r : results) {
      r.fail(alg::FailureKind::kInvalidInput,
             "route_many: per-instance options size != batch size");
    }
    return results;
  }

  std::vector<EngineRouteOptions> inst_opts;
  inst_opts.reserve(opts.size());
  for (const EngineRouteOptions& o : opts) {
    inst_opts.push_back(sliced(o, batch.size()));
  }
  pool_.parallel_for(static_cast<std::int64_t>(batch.size()),
                     [&](std::int64_t i) {
                       results[static_cast<std::size_t>(i)] = route(
                           batch[static_cast<std::size_t>(i)],
                           inst_opts[static_cast<std::size_t>(i)]);
                     });
  return results;
}

void BatchRouter::rebind(const SegmentedChannel& ch) {
  ch_ = &ch;
  index_ = ChannelIndex(ch);
  SEGROUTE_INSTANT("engine.rebind", "fingerprint", index_.fingerprint());
}

RebindDelta BatchRouter::rebind_delta(const SegmentedChannel& ch) {
  RebindDelta d;
  d.old_fingerprint = index_.fingerprint();
  const SegmentedChannel& old_ch = *ch_;
  // Migration-comparable: same shape AND the same identical-segmentation
  // type partition. The partition guard matters because a canonicalizing
  // router (the DP's type dedup) can change tie-breaks *globally* when a
  // class splits or merges, even for connections far from the edit; the
  // dense first-occurrence type ids make vector equality mean partition
  // equality.
  const bool comparable = old_ch.num_tracks() == ch.num_tracks() &&
                          old_ch.width() == ch.width() &&
                          old_ch.type_of() == ch.type_of();
  Column lo = std::numeric_limits<Column>::max();
  Column hi = -1;
  if (comparable) {
    for (TrackId t = 0; t < ch.num_tracks(); ++t) {
      const Track& ot = old_ch.track(t);
      const Track& nt = ch.track(t);
      const std::vector<Column> a = ot.switch_positions();
      const std::vector<Column> b = nt.switch_positions();
      // A switch at p separates columns p and p+1; a switch present in
      // only one segmentation changes exactly the segments adjacent to
      // it — widen the mask to their extents in BOTH segmentations.
      const auto widen = [&](Column p) {
        const auto [al, ar] = ot.align_to_segments(p, p + 1);
        const auto [bl, br] = nt.align_to_segments(p, p + 1);
        lo = std::min({lo, al, bl});
        hi = std::max({hi, ar, br});
      };
      std::size_t i = 0;
      std::size_t j = 0;
      while (i < a.size() || j < b.size()) {
        if (j == b.size() || (i < a.size() && a[i] < b[j])) {
          widen(a[i++]);
        } else if (i == a.size() || b[j] < a[i]) {
          widen(b[j++]);
        } else {
          ++i;
          ++j;
        }
      }
    }
  }
  ch_ = &ch;
  index_ = ChannelIndex(ch);
  d.new_fingerprint = index_.fingerprint();
  SEGROUTE_INSTANT("engine.rebind", "fingerprint", index_.fingerprint());
  if (!comparable) {
    d.structural = true;
    return d;  // plain rebind() semantics: entries stay under the old fp
  }
  if (hi >= lo) {
    d.affected_lo = lo;
    d.affected_hi = hi;
  }
  if (d.old_fingerprint == d.new_fingerprint) return d;  // same substrate

  // Pass 1: under each shard's lock, pull out the old substrate's
  // entries — mask-disjoint ones migrate, the rest are invalidated.
  // (Re-keying changes the hash, and the hash picks the shard, so
  // migrated entries may move shards; like rebind(), callers quiesce
  // routing first.)
  std::vector<CacheEntry> moving;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->entries.begin(); it != shard->entries.end();) {
      if (it->key.fingerprint != d.old_fingerprint) {
        ++it;
        continue;
      }
      bool disjoint = true;
      for (const auto& [l, r] : it->key.conns) {
        if (l <= d.affected_hi && r >= d.affected_lo) {
          disjoint = false;
          break;
        }
      }
      shard->by_key.erase(it->key);
      if (disjoint) {
        moving.push_back(std::move(*it));
      } else {
        ++shard->invalidations;
        SEGROUTE_COUNT("engine.cache.invalidated", 1);
        ++d.evicted;
      }
      it = shard->entries.erase(it);
    }
  }
  // Pass 2: re-key and re-insert at MRU position in the (possibly
  // different) shard the new hash selects.
  for (CacheEntry& e : moving) {
    e.key.fingerprint = d.new_fingerprint;
    e.key.hash = key_hash(e.key);
    Shard& shard = shard_of(e.key.hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.by_key.find(e.key) != shard.by_key.end()) continue;
    shard.entries.push_front(std::move(e));
    shard.by_key.emplace(shard.entries.front().key, shard.entries.begin());
    ++d.migrated;
    while (shard.entries.size() > shard.capacity) {
      shard.by_key.erase(shard.entries.back().key);
      shard.entries.pop_back();
      ++shard.evictions;
      SEGROUTE_COUNT("engine.cache.evictions", 1);
    }
  }
  return d;
}

void BatchRouter::invalidate(std::uint64_t fingerprint) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->entries.begin(); it != shard->entries.end();) {
      if (it->key.fingerprint == fingerprint) {
        shard->by_key.erase(it->key);
        it = shard->entries.erase(it);
        ++shard->invalidations;
        SEGROUTE_COUNT("engine.cache.invalidated", 1);
      } else {
        ++it;
      }
    }
  }
}

CacheStats BatchRouter::cache_stats() const {
  CacheStats s;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.hits += shard->hits;
    s.misses += shard->misses;
    s.evictions += shard->evictions;
    s.invalidations += shard->invalidations;
    s.size += shard->entries.size();
  }
  s.capacity = opts_.use_cache ? opts_.cache_capacity : 0;
  return s;
}

std::vector<CacheStats> BatchRouter::shard_stats() const {
  std::vector<CacheStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    CacheStats s;
    s.hits = shard->hits;
    s.misses = shard->misses;
    s.evictions = shard->evictions;
    s.invalidations = shard->invalidations;
    s.size = shard->entries.size();
    s.capacity = shard->capacity;
    out.push_back(s);
  }
  return out;
}

void BatchRouter::clear_cache() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
    shard->by_key.clear();
  }
}

}  // namespace segroute::engine
