#include "engine/batch.h"

#include <algorithm>

#include "alg/registry.h"
#include "core/router.h"
#include "engine/scratch.h"
#include "obs/instrument.h"

namespace segroute::engine {

namespace {

std::uint64_t fnv_pair(Column l, Column r) {
  std::uint64_t h = 1469598103934665603ull;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(l));
  h *= 1099511628211ull;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(r));
  h *= 1099511628211ull;
  return h;
}

/// Cache-safe results are pure functions of (channel, instance, options):
/// success or proven infeasibility. Budget-limited and invalid-input
/// outcomes are not cached (the former depend on machine load, the
/// latter are cheap to recompute and carry no routing).
bool cacheable(const alg::RouteResult& r) {
  return r.success || r.failure == alg::FailureKind::kInfeasible;
}

}  // namespace

const char* to_string(WeightKind k) {
  switch (k) {
    case WeightKind::kNone:
      return "none";
    case WeightKind::kOccupiedLength:
      return "occupied-length";
    case WeightKind::kSegmentCount:
      return "segment-count";
    case WeightKind::kWastedLength:
      return "wasted-length";
    case WeightKind::kUnit:
      return "unit";
  }
  return "?";
}

std::optional<WeightFn> make_weight(WeightKind k) {
  switch (k) {
    case WeightKind::kNone:
      return std::nullopt;
    case WeightKind::kOccupiedLength:
      return weights::occupied_length();
    case WeightKind::kSegmentCount:
      return weights::segment_count();
    case WeightKind::kWastedLength:
      return weights::wasted_length();
    case WeightKind::kUnit:
      return weights::unit();
  }
  return std::nullopt;
}

BatchRouter::BatchRouter(const SegmentedChannel& ch, BatchOptions opts)
    : ch_(&ch), index_(ch), opts_(opts), pool_(opts.threads) {
  for (int k = 0; k < 5; ++k) {
    weight_fns_[k] = make_weight(static_cast<WeightKind>(k));
  }
}

BatchRouter::CacheKey BatchRouter::make_key(
    const ConnectionSet& cs, const EngineRouteOptions& opts) const {
  CacheKey key;
  key.router = opts.router;
  key.fingerprint = index_.fingerprint();
  key.max_segments = opts.max_segments;
  key.weight = opts.weight;
  key.conns.reserve(static_cast<std::size_t>(cs.size()));
  // Permutation-invariant hash (commutative combine over per-connection
  // hashes, mixed with the options and the channel fingerprint) so the
  // "connection multiset" lands in one bucket; equality still compares
  // the exact sequence, because a routing maps connection *ids* to
  // tracks and a permuted instance needs its own entry.
  std::uint64_t h = index_.fingerprint();
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(opts.max_segments))
       * 1099511628211ull;
  h ^= static_cast<std::uint64_t>(opts.weight) * 1099511628211ull;
  for (const char c : opts.router) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  for (const Connection& c : cs.all()) {
    key.conns.emplace_back(c.left, c.right);
    h += fnv_pair(c.left, c.right);
  }
  key.hash = h;
  return key;
}

alg::RouteResult BatchRouter::route_one(const ConnectionSet& cs,
                                        const EngineRouteOptions& opts,
                                        const harness::Budget& budget) {
  Scratch& scratch = thread_scratch();
  RouteRequest rq;
  rq.channel = ch_;
  rq.connections = &cs;
  rq.context.index = &index_;
  rq.context.occupancy = &scratch.occupancy_for(index_);
  rq.dp_workspace = &scratch.dp();
  rq.options.max_segments = opts.max_segments;
  rq.options.weight = weight_fns_[static_cast<int>(opts.weight)];
  rq.budget = budget;
  alg::RouteResult res = alg::route(opts.router, rq);
  // The scratch arenas grow during the route; record the retained
  // high-water mark after the fact.
  SEGROUTE_GAUGE_MAX("engine.scratch.bytes_held", scratch.bytes_held());
  return res;
}

alg::RouteResult BatchRouter::route(const ConnectionSet& cs,
                                    const EngineRouteOptions& opts) {
  SEGROUTE_SPAN(route_span, "engine.route", "fingerprint",
                index_.fingerprint());
  const bool pure = opts.budget.unlimited();
  if (!opts_.use_cache || !pure || opts_.cache_capacity == 0) {
    return route_one(cs, opts, opts.budget);
  }
  CacheKey key = make_key(cs, opts);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      ++hits_;
      entries_.splice(entries_.begin(), entries_, it->second);  // touch
      SEGROUTE_COUNT("engine.cache.hits", 1);
      return it->second->result;
    }
    ++misses_;
  }
  SEGROUTE_COUNT("engine.cache.misses", 1);
  alg::RouteResult res = route_one(cs, opts, opts.budget);
  if (cacheable(res)) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    // Another thread may have inserted the same key while we routed;
    // both computed identical results, so keeping the existing entry is
    // equivalent.
    if (by_key_.find(key) == by_key_.end()) {
      entries_.push_front(CacheEntry{std::move(key), res});
      by_key_.emplace(entries_.front().key, entries_.begin());
      while (entries_.size() > opts_.cache_capacity) {
        by_key_.erase(entries_.back().key);
        entries_.pop_back();
        ++evictions_;
        SEGROUTE_COUNT("engine.cache.evictions", 1);
      }
    }
  }
  return res;
}

std::vector<alg::RouteResult> BatchRouter::route_many(
    const std::vector<ConnectionSet>& batch, const EngineRouteOptions& opts) {
  std::vector<alg::RouteResult> results(batch.size());
  if (batch.empty()) return results;

  // Per-instance budget: the caller's, tightened by an even slice of the
  // batch deadline when one is configured. Slices are a function of the
  // batch size only — not of the thread count — so results stay
  // thread-count invariant (up to wall-clock jitter inherent in any
  // deadline).
  EngineRouteOptions inst_opts = opts;
  if (opts_.deadline) {
    const auto slice = *opts_.deadline / static_cast<int>(batch.size());
    inst_opts.budget.deadline =
        inst_opts.budget.deadline ? std::min(*inst_opts.budget.deadline, slice)
                                  : slice;
  }

  pool_.parallel_for(static_cast<std::int64_t>(batch.size()),
                     [&](std::int64_t i) {
                       results[static_cast<std::size_t>(i)] =
                           route(batch[static_cast<std::size_t>(i)], inst_opts);
                     });
  return results;
}

void BatchRouter::rebind(const SegmentedChannel& ch) {
  ch_ = &ch;
  index_ = ChannelIndex(ch);
  SEGROUTE_INSTANT("engine.rebind", "fingerprint", index_.fingerprint());
}

void BatchRouter::invalidate(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->key.fingerprint == fingerprint) {
      by_key_.erase(it->key);
      it = entries_.erase(it);
      ++invalidations_;
      SEGROUTE_COUNT("engine.cache.invalidated", 1);
    } else {
      ++it;
    }
  }
}

CacheStats BatchRouter::cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.invalidations = invalidations_;
  s.size = entries_.size();
  s.capacity = opts_.use_cache ? opts_.cache_capacity : 0;
  return s;
}

void BatchRouter::clear_cache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  entries_.clear();
  by_key_.clear();
}

}  // namespace segroute::engine
