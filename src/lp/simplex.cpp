#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace segroute::lp {

int Problem::add_variable(double obj) {
  obj_.push_back(obj);
  return static_cast<int>(obj_.size()) - 1;
}

void Problem::add_constraint(std::vector<std::pair<int, double>> terms,
                             Relation rel, double rhs) {
  for (auto [v, c] : terms) {
    if (v < 0 || v >= num_variables()) {
      throw std::invalid_argument("Problem::add_constraint: bad variable index");
    }
    (void)c;
  }
  rows_.push_back(Row{std::move(terms), rel, rhs});
}

void Problem::add_upper_bound(int var, double ub) {
  add_constraint({{var, 1.0}}, Relation::LessEq, ub);
}

namespace {

/// Dense simplex tableau. Rows 0..m-1 are constraints; row m is the
/// objective (reduced costs, maximization: we pivot while some reduced
/// cost is positive... we store the objective row as z-row with negated
/// coefficients so optimality = all entries >= 0).
class Tableau {
 public:
  Tableau(int m, int n) : m_(m), n_(n), a_(static_cast<std::size_t>(m + 1) *
                                           static_cast<std::size_t>(n + 1), 0.0),
                          basis_(static_cast<std::size_t>(m), -1) {}

  double& at(int r, int c) {
    return a_[static_cast<std::size_t>(r) * static_cast<std::size_t>(n_ + 1) +
              static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double at(int r, int c) const {
    return a_[static_cast<std::size_t>(r) * static_cast<std::size_t>(n_ + 1) +
              static_cast<std::size_t>(c)];
  }
  double& rhs(int r) { return at(r, n_); }
  [[nodiscard]] double rhs(int r) const { return at(r, n_); }

  [[nodiscard]] int rows() const { return m_; }
  [[nodiscard]] int cols() const { return n_; }
  [[nodiscard]] int basis(int r) const { return basis_[static_cast<std::size_t>(r)]; }
  void set_basis(int r, int v) { basis_[static_cast<std::size_t>(r)] = v; }

  /// Pivot on (row, col): scale the pivot row, eliminate the column
  /// elsewhere (including the objective row m_).
  void pivot(int row, int col) {
    const double piv = at(row, col);
    const double inv = 1.0 / piv;
    for (int c = 0; c <= n_; ++c) at(row, c) *= inv;
    at(row, col) = 1.0;  // exact
    for (int r = 0; r <= m_; ++r) {
      if (r == row) continue;
      const double f = at(r, col);
      if (f == 0.0) continue;
      for (int c = 0; c <= n_; ++c) at(r, c) -= f * at(row, c);
      at(r, col) = 0.0;  // exact
    }
    basis_[static_cast<std::size_t>(row)] = col;
  }

 private:
  int m_, n_;
  std::vector<double> a_;
  std::vector<int> basis_;
};

/// Runs primal simplex iterations on `t` until optimal/unbounded/limit.
/// Only columns < `entering_limit` may enter the basis (phase 2 passes
/// the first artificial column here so artificials can never re-enter —
/// a positive reduced cost at installation time is not preserved by
/// later pivots).
Status iterate(Tableau& t, const SolveOptions& opts, int& iters,
               int entering_limit) {
  const double eps = opts.tolerance;
  const int m = t.rows();
  const int n = entering_limit;
  // Switch to Bland's rule after a budget proportional to problem size to
  // break any cycling that Dantzig pricing might cause.
  const int bland_after = 20 * (m + n);
  int local_iter = 0;
  while (true) {
    if (iters >= opts.max_iterations) return Status::IterationLimit;
    if (opts.deadline && (local_iter & 15) == 0 &&
        std::chrono::steady_clock::now() >= *opts.deadline) {
      return Status::DeadlineExceeded;
    }
    // Entering column: objective-row entry < -eps.
    int enter = -1;
    if (local_iter < bland_after) {
      double best = -eps;
      for (int c = 0; c < n; ++c) {
        if (t.at(m, c) < best) {
          best = t.at(m, c);
          enter = c;
        }
      }
    } else {
      for (int c = 0; c < n; ++c) {
        if (t.at(m, c) < -eps) {
          enter = c;
          break;
        }
      }
    }
    if (enter == -1) return Status::Optimal;
    // Leaving row: min ratio rhs/coef over coef > eps; Bland tie-break by
    // smallest basis variable index.
    int leave = -1;
    double best_ratio = 0.0;
    for (int r = 0; r < m; ++r) {
      const double coef = t.at(r, enter);
      if (coef > eps) {
        const double ratio = t.rhs(r) / coef;
        if (leave == -1 || ratio < best_ratio - eps ||
            (ratio < best_ratio + eps && t.basis(r) < t.basis(leave))) {
          leave = r;
          best_ratio = ratio;
        }
      }
    }
    if (leave == -1) return Status::Unbounded;
    t.pivot(leave, enter);
    ++iters;
    ++local_iter;
  }
}

}  // namespace

Solution solve(const Problem& p, const SolveOptions& opts) {
  const int n = p.num_variables();
  const int m = p.num_constraints();

  // Column layout: [0, n) structural, then one slack/surplus per inequality
  // row, then one artificial per >=/= row (and per <= row with negative rhs
  // normalization handled by sign flip below).
  int n_slack = 0;
  for (const auto& row : p.rows()) {
    if (row.rel != Relation::Equal) ++n_slack;
  }

  // First pass to count artificials: a row needs one unless it is a <= row
  // whose slack can serve as the initial basic variable (requires rhs >= 0
  // after normalization).
  struct RowPlan {
    double sign = 1.0;  // multiply row by this to make rhs >= 0
    Relation rel;       // relation after sign flip
    int slack = -1;     // column of slack/surplus, or -1
    int artificial = -1;
  };
  std::vector<RowPlan> plan(static_cast<std::size_t>(m));
  int next_col = n;
  for (int r = 0; r < m; ++r) {
    const auto& row = p.rows()[static_cast<std::size_t>(r)];
    RowPlan& pl = plan[static_cast<std::size_t>(r)];
    pl.rel = row.rel;
    if (row.rhs < 0) {
      pl.sign = -1.0;
      if (row.rel == Relation::LessEq) pl.rel = Relation::GreaterEq;
      else if (row.rel == Relation::GreaterEq) pl.rel = Relation::LessEq;
    }
    if (pl.rel != Relation::Equal) pl.slack = next_col++;
  }
  int n_art = 0;
  for (int r = 0; r < m; ++r) {
    RowPlan& pl = plan[static_cast<std::size_t>(r)];
    if (pl.rel != Relation::LessEq) {
      pl.artificial = next_col++;
      ++n_art;
    }
  }
  const int n_total = next_col;

  Tableau t(m, n_total);
  for (int r = 0; r < m; ++r) {
    const auto& row = p.rows()[static_cast<std::size_t>(r)];
    const RowPlan& pl = plan[static_cast<std::size_t>(r)];
    for (auto [v, c] : row.terms) t.at(r, v) += pl.sign * c;
    t.rhs(r) = pl.sign * row.rhs;
    if (pl.slack != -1) {
      t.at(r, pl.slack) = (pl.rel == Relation::LessEq) ? 1.0 : -1.0;
    }
    if (pl.artificial != -1) {
      t.at(r, pl.artificial) = 1.0;
      t.set_basis(r, pl.artificial);
    } else {
      t.set_basis(r, pl.slack);
    }
  }

  Solution sol;
  int iters = 0;

  if (n_art > 0) {
    // Phase 1: minimize sum of artificials == maximize -sum. Objective row
    // holds z-row entries; initialize by pricing out the basic artificials.
    for (int r = 0; r < m; ++r) {
      const RowPlan& pl = plan[static_cast<std::size_t>(r)];
      if (pl.artificial == -1) continue;
      for (int c = 0; c <= n_total; ++c) t.at(m, c) -= t.at(r, c);
      t.at(m, pl.artificial) = 0.0;
    }
    const Status s1 = iterate(t, opts, iters, n_total);
    if (s1 == Status::IterationLimit || s1 == Status::DeadlineExceeded) {
      sol.status = s1;
      sol.iterations = iters;
      return sol;
    }
    // Phase-1 optimum is -(sum of artificials) stored as rhs of the z-row
    // with sign flipped by construction; recompute directly for clarity.
    double art_sum = 0.0;
    for (int r = 0; r < m; ++r) {
      const int b = t.basis(r);
      bool is_art = false;
      for (const auto& pl : plan) {
        if (pl.artificial == b) { is_art = true; break; }
      }
      if (is_art) art_sum += t.rhs(r);
    }
    if (art_sum > 1e-7) {
      sol.status = Status::Infeasible;
      sol.iterations = iters;
      return sol;
    }
    // Drive any remaining (degenerate, value-0) artificials out of the basis.
    for (int r = 0; r < m; ++r) {
      const int b = t.basis(r);
      bool is_art = false;
      for (const auto& pl : plan) {
        if (pl.artificial == b) { is_art = true; break; }
      }
      if (!is_art) continue;
      int enter = -1;
      for (int c = 0; c < n + n_slack; ++c) {
        if (std::abs(t.at(r, c)) > opts.tolerance) { enter = c; break; }
      }
      if (enter != -1) t.pivot(r, enter);
      // else: the row is all-zero over real columns — redundant constraint;
      // the artificial stays basic at value 0 and is harmless in phase 2
      // because its column is excluded from pricing below.
    }
  }

  // Phase 2: install the real objective row (z-row: -obj priced out over
  // the current basis), and forbid artificial columns by zeroing... we
  // instead give them strongly penalized reduced costs by leaving their
  // z-row entries at +1 (any positive value keeps them non-entering).
  for (int c = 0; c <= n_total; ++c) t.at(m, c) = 0.0;
  for (int v = 0; v < n; ++v) t.at(m, v) = -p.objective()[static_cast<std::size_t>(v)];
  for (const auto& pl : plan) {
    if (pl.artificial != -1) t.at(m, pl.artificial) = 1.0;
  }
  // Price out basic variables.
  for (int r = 0; r < m; ++r) {
    const int b = t.basis(r);
    const double f = t.at(m, b);
    if (f == 0.0) continue;
    for (int c = 0; c <= n_total; ++c) t.at(m, c) -= f * t.at(r, c);
    t.at(m, b) = 0.0;
  }

  const Status s2 = iterate(t, opts, iters, n + n_slack);
  sol.status = s2;
  sol.iterations = iters;
  if (s2 != Status::Optimal) return sol;

  sol.x.assign(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < m; ++r) {
    const int b = t.basis(r);
    if (b < n) sol.x[static_cast<std::size_t>(b)] = t.rhs(r);
  }
  double obj = 0.0;
  for (int v = 0; v < n; ++v) {
    obj += p.objective()[static_cast<std::size_t>(v)] *
           sol.x[static_cast<std::size_t>(v)];
  }
  sol.objective = obj;
  return sol;
}

}  // namespace segroute::lp
