// A self-contained dense two-phase primal simplex solver.
//
// Substrate for the Section IV-C linear-programming routing heuristic.
// Scope: small/medium dense LPs (thousands of variables, hundreds of
// rows) — exactly the scale of the paper's simulations (M=60, T=25).
#pragma once

#include <chrono>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

namespace segroute::lp {

enum class Relation { LessEq, GreaterEq, Equal };

enum class Status {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  DeadlineExceeded,
};

/// A linear program over variables x_0..x_{n-1} with implicit bounds
/// x_j >= 0. Upper bounds are expressed as ordinary rows. The objective
/// is maximized.
class Problem {
 public:
  /// Adds a variable with objective coefficient `obj`; returns its index.
  int add_variable(double obj = 0.0);

  /// Adds the row  sum(coef_k * x_{var_k})  rel  rhs.
  void add_constraint(std::vector<std::pair<int, double>> terms, Relation rel,
                      double rhs);

  /// Convenience: x_j <= ub.
  void add_upper_bound(int var, double ub);

  [[nodiscard]] int num_variables() const {
    return static_cast<int>(obj_.size());
  }
  [[nodiscard]] int num_constraints() const {
    return static_cast<int>(rows_.size());
  }

  struct Row {
    std::vector<std::pair<int, double>> terms;
    Relation rel;
    double rhs;
  };

  [[nodiscard]] const std::vector<double>& objective() const { return obj_; }
  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<double> obj_;
  std::vector<Row> rows_;
};

struct Solution {
  Status status = Status::Infeasible;
  double objective = 0.0;
  std::vector<double> x;  // primal values (size = num_variables) if Optimal
  int iterations = 0;

  [[nodiscard]] bool optimal() const { return status == Status::Optimal; }
};

struct SolveOptions {
  int max_iterations = 200000;
  double tolerance = 1e-9;
  /// Wall-clock cutoff (checked every few pivots); nullopt = none. Lets
  /// the routing harness bound a single simplex solve instead of only
  /// whole fix-and-resolve passes.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// Solves `p` (maximization) with two-phase primal simplex. Dantzig pricing
/// with a Bland's-rule fallback guarantees termination.
Solution solve(const Problem& p, const SolveOptions& opts = {});

}  // namespace segroute::lp
