// Random connection workloads for experiments and property tests.
#pragma once

#include <random>

#include "core/connection.h"

namespace segroute::gen {

/// M connections with uniformly random endpoints in [1, width].
ConnectionSet uniform_workload(int m, Column width, std::mt19937_64& rng);

/// M connections whose left ends are uniform and whose lengths are
/// geometric with the given mean (clipped to the channel) — the
/// two-dimensional stochastic interconnection model of El Gamal [9],
/// specialized to a single channel, which the companion papers [10], [11]
/// use to design and evaluate segmentations.
ConnectionSet geometric_workload(int m, Column width, double mean_length,
                                 std::mt19937_64& rng);

/// Connections generated column-by-column with Poisson arrivals of rate
/// `lambda` per column and geometric lengths; the expected channel
/// density is roughly lambda * mean_length.
ConnectionSet poisson_workload(Column width, double lambda, double mean_length,
                               std::mt19937_64& rng);

/// A workload that is routable in `ch` *by construction*: each connection
/// is carved out of segments that are still free, so the generating
/// placement is a witness routing. Useful for success-rate experiments
/// where the ground truth must be YES (e.g. the Section IV-C LP
/// simulations). If `max_segments` > 0 each connection occupies at most
/// that many segments in the witness. May return fewer than `m`
/// connections when the channel fills up.
ConnectionSet routable_workload(const SegmentedChannel& ch, int m,
                                double mean_length, std::mt19937_64& rng,
                                int max_segments = 0);

}  // namespace segroute::gen
