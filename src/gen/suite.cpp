#include "gen/suite.h"

#include <random>
#include <stdexcept>

#include "gen/fixtures.h"
#include "gen/segmentation.h"
#include "gen/workload.h"

namespace segroute::gen {

namespace {

ConnectionSet seeded_geometric(int m, Column width, double mean,
                               std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return geometric_workload(m, width, mean, rng);
}

ConnectionSet seeded_routable(const SegmentedChannel& ch, int m, double mean,
                              std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return routable_workload(ch, m, mean, rng);
}

}  // namespace

std::vector<SuiteInstance> standard_suite() {
  std::vector<SuiteInstance> suite;

  suite.push_back({"fig2", "the paper's Fig. 2 workload on the uniform K=2 channel",
                   fixtures::fig2_channel_2segment(), fixtures::fig2_connections(),
                   /*routable=*/true, /*min_k=*/2, /*optimal_length=*/18});
  suite.push_back({"fig3", "the paper's running example (Fig. 3)",
                   fixtures::fig3_channel(), fixtures::fig3_connections(),
                   true, 1, 20});
  suite.push_back({"fig4", "Fig. 4: single-track routing impossible",
                   fixtures::fig4_channel(), fixtures::fig4_connections(),
                   false, 0, 0});
  suite.push_back({"fig8", "Fig. 8: the pool-greedy trace instance",
                   fixtures::fig8_channel(), fixtures::fig8_connections(),
                   true, 2, 22});
  suite.push_back({"uniform-tight",
                   "3 identical tracks, 8 geometric nets near capacity",
                   SegmentedChannel::identical(3, 24, {6, 12, 18}),
                   seeded_geometric(8, 24, 4.0, 1001), true, 2, 60});
  suite.push_back({"staggered-mid",
                   "5 staggered tracks, 14 nets: just over capacity",
                   staggered_segmentation(5, 36, 9),
                   seeded_geometric(14, 36, 5.0, 1002), false, 0, 0});
  suite.push_back({"progressive-long",
                   "6 tracks of 3 segment-length types, 16 nets",
                   progressive_segmentation(6, 48, 4, 3),
                   seeded_geometric(16, 48, 5.0, 1003), true, 2, 136});
  suite.push_back({"dense-infeasible",
                   "2 coarse tracks, 8 nets: over capacity",
                   SegmentedChannel::identical(2, 16, {8}),
                   seeded_geometric(8, 16, 4.0, 1004), false, 0, 0});
  {
    auto ch = staggered_segmentation(8, 64, 8);
    auto cs = seeded_routable(ch, 24, 6.0, 1005);
    suite.push_back({"routable-large",
                     "8 staggered tracks, 24 nets carved routable",
                     std::move(ch), std::move(cs), true, 3, 223});
  }
  suite.push_back({"express-style",
                   "alternating short/long segment types, 12 nets: the mix "
                   "is too coarse for this workload",
                   progressive_segmentation(4, 40, 5, 2),
                   seeded_geometric(12, 40, 6.0, 1006), false, 0, 0});
  return suite;
}

SuiteInstance suite_instance(const std::string& name) {
  for (auto& inst : standard_suite()) {
    if (inst.name == name) return inst;
  }
  throw std::invalid_argument("suite_instance: unknown instance '" + name +
                              "'");
}

}  // namespace segroute::gen
