#include "gen/workload.h"

#include <algorithm>
#include <stdexcept>

#include "core/routing.h"

namespace segroute::gen {

namespace {

Column geometric_length(double mean_length, std::mt19937_64& rng) {
  if (mean_length <= 1.0) return 1;
  // Geometric on {1, 2, ...} with mean `mean_length`: success prob 1/mean.
  std::geometric_distribution<int> g(1.0 / mean_length);
  return static_cast<Column>(1 + g(rng));
}

}  // namespace

ConnectionSet uniform_workload(int m, Column width, std::mt19937_64& rng) {
  if (m < 0 || width < 1) {
    throw std::invalid_argument("uniform_workload: bad parameters");
  }
  std::uniform_int_distribution<Column> col(1, width);
  ConnectionSet cs;
  for (int i = 0; i < m; ++i) {
    Column a = col(rng), b = col(rng);
    if (a > b) std::swap(a, b);
    cs.add(a, b);
  }
  return cs;
}

ConnectionSet geometric_workload(int m, Column width, double mean_length,
                                 std::mt19937_64& rng) {
  if (m < 0 || width < 1 || mean_length < 1.0) {
    throw std::invalid_argument("geometric_workload: bad parameters");
  }
  std::uniform_int_distribution<Column> col(1, width);
  ConnectionSet cs;
  for (int i = 0; i < m; ++i) {
    const Column left = col(rng);
    const Column len = geometric_length(mean_length, rng);
    cs.add(left, std::min<Column>(width, left + len - 1));
  }
  return cs;
}

ConnectionSet routable_workload(const SegmentedChannel& ch, int m,
                                double mean_length, std::mt19937_64& rng,
                                int max_segments) {
  if (m < 0 || mean_length < 1.0) {
    throw std::invalid_argument("routable_workload: bad parameters");
  }
  const Column width = ch.width();
  Occupancy occ(ch);
  ConnectionSet cs;
  std::uniform_int_distribution<Column> col(1, width);
  std::uniform_int_distribution<TrackId> trk(0, ch.num_tracks() - 1);
  for (int i = 0; i < m; ++i) {
    bool placed = false;
    for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
      const TrackId t = trk(rng);
      const Column left = col(rng);
      Column len = 1;
      if (mean_length > 1.0) {
        std::geometric_distribution<int> g(1.0 / mean_length);
        len = static_cast<Column>(1 + g(rng));
      }
      const Column right = std::min<Column>(width, left + len - 1);
      if (max_segments > 0 &&
          ch.track(t).segments_spanned(left, right) > max_segments) {
        continue;
      }
      if (occ.place(t, left, right, static_cast<ConnId>(cs.size()))) {
        cs.add(left, right);
        placed = true;
      }
    }
    if (!placed) {
      // Fall back: any still-free segment hosts a single-segment net.
      for (TrackId t = 0; t < ch.num_tracks() && !placed; ++t) {
        const Track& tr = ch.track(t);
        for (SegId s = 0; s < tr.num_segments() && !placed; ++s) {
          if (occ.occupant(t, s) != kNoConn) continue;
          const Segment& seg = tr.segment(s);
          occ.place(t, seg.left, seg.right, static_cast<ConnId>(cs.size()));
          cs.add(seg.left, seg.right);
          placed = true;
        }
      }
    }
    if (!placed) break;  // channel is full
  }
  return cs;
}

ConnectionSet poisson_workload(Column width, double lambda, double mean_length,
                               std::mt19937_64& rng) {
  if (width < 1 || lambda < 0 || mean_length < 1.0) {
    throw std::invalid_argument("poisson_workload: bad parameters");
  }
  std::poisson_distribution<int> arrivals(lambda);
  ConnectionSet cs;
  for (Column c = 1; c <= width; ++c) {
    const int k = arrivals(rng);
    for (int i = 0; i < k; ++i) {
      const Column len = geometric_length(mean_length, rng);
      cs.add(c, std::min<Column>(width, c + len - 1));
    }
  }
  return cs;
}

}  // namespace segroute::gen
