// Frozen reconstructions of the paper's worked examples.
//
// The published figures give switch positions only graphically; the
// scanned text does not preserve exact coordinates. Each fixture here is
// reconstructed to satisfy every constraint the paper states in prose
// (documented per fixture), and the properties the paper claims about the
// example are re-verified computationally by tests and benches.
#pragma once

#include "core/channel.h"
#include "core/connection.h"
#include "npc/nmts.h"

namespace segroute::gen::fixtures {

/// Fig. 2(a): the four connections routed under every scheme of Fig. 2.
/// Reconstruction: density 2, so the unconstrained channel (b) needs two
/// tracks; each net must be single-segment routable in the (e) channel and
/// <=2-segment routable in the (f) channel.
ConnectionSet fig2_connections();

/// Fig. 2(e): two tracks segmented for 1-segment routing of
/// fig2_connections().
SegmentedChannel fig2_channel_1segment();

/// Fig. 2(f): two uniformly segmented tracks; routable with K = 2.
SegmentedChannel fig2_channel_2segment();

/// Fig. 3: the running example. T = 3, N = 9; track 1 has segments s11,
/// s12, s13; track 2 s21, s22, s23; track 3 s31, s32. Matches the prose:
/// connection c3 either occupies s21 and s22 in track 2 or fits in s31.
SegmentedChannel fig3_channel();
ConnectionSet fig3_connections();  // c1..c5

/// Fig. 4: an instance where no single-track (Definition 1) routing
/// exists but a generalized (Definition 2) routing does. Reconstructed to
/// satisfy exactly that property (checked by tests).
SegmentedChannel fig4_channel();
ConnectionSet fig4_connections();

/// Fig. 8: the trace example for the at-most-2-segments-per-track greedy:
/// c1 is placed, c2 pools, c3 picks a tie-broken track, the pool flush
/// then fills the last unoccupied track, and c4 is placed normally.
SegmentedChannel fig8_channel();
ConnectionSet fig8_connections();

/// Example 1 / Fig. 5: the NMTS instance x = (2,5,8), y = (9,11,12),
/// z = (11,17,19) used to illustrate the Theorem 1 reduction. Already
/// satisfies the reduction preconditions without normalization.
npc::NmtsInstance example1_nmts();

}  // namespace segroute::gen::fixtures
