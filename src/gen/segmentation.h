// Segmentation schemes and a sample-driven segmentation designer — the
// supply side of the trade-off the paper's introduction describes (Fig. 2)
// and the companion papers [10], [11] optimize.
#pragma once

#include <random>
#include <vector>

#include "core/channel.h"
#include "core/connection.h"

namespace segroute::gen {

/// T identical tracks with a switch every `segment_length` columns.
SegmentedChannel uniform_segmentation(TrackId tracks, Column width,
                                      Column segment_length);

/// Like uniform_segmentation but track t's switch grid is shifted by
/// t * segment_length / tracks columns, so switch positions are staggered
/// across tracks (a net unroutable in one track often fits the next).
SegmentedChannel staggered_segmentation(TrackId tracks, Column width,
                                        Column segment_length);

/// Tracks whose segment lengths follow a geometric progression of types:
/// type k (k = 0..num_types-1) has segments of length base << k; the T
/// tracks cycle through the types. Mirrors commercial channeled-FPGA
/// channels that mix short and long segments.
SegmentedChannel progressive_segmentation(TrackId tracks, Column width,
                                          Column base_length, int num_types);

/// Designs a channel from sample workloads: segment lengths are chosen
/// from the empirical quantiles of the samples' connection lengths
/// (shorter tracks serve short nets, longer tracks long nets), and switch
/// grids are staggered within each length class. `slack` multiplies each
/// length (>= 1.0 leaves headroom for imperfect alignment).
SegmentedChannel design_segmentation(TrackId tracks, Column width,
                                     const std::vector<ConnectionSet>& samples,
                                     double slack = 1.3);

}  // namespace segroute::gen
