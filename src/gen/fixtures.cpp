#include "gen/fixtures.h"

namespace segroute::gen::fixtures {

ConnectionSet fig2_connections() {
  ConnectionSet cs;
  cs.add(1, 3, "c1");
  cs.add(2, 6, "c2");
  cs.add(5, 8, "c3");
  cs.add(7, 9, "c4");
  return cs;
}

SegmentedChannel fig2_channel_1segment() {
  // Track 1: (1,3)(4,9) serves c1 and c3; track 2: (1,6)(7,9) serves c2
  // and c4 — every net in a single segment.
  return SegmentedChannel({Track(9, {3}), Track(9, {6})});
}

SegmentedChannel fig2_channel_2segment() {
  // Two identical tracks cut every three columns: (1,3)(4,6)(7,9).
  return SegmentedChannel::identical(2, 9, {3, 6});
}

SegmentedChannel fig3_channel() {
  return SegmentedChannel({
      Track(9, {2, 5}),  // s11 (1,2), s12 (3,5), s13 (6,9)
      Track(9, {4, 6}),  // s21 (1,4), s22 (5,6), s23 (7,9)
      Track(9, {6}),     // s31 (1,6), s32 (7,9)
  });
}

ConnectionSet fig3_connections() {
  ConnectionSet cs;
  cs.add(1, 3, "c1");
  cs.add(3, 5, "c2");
  cs.add(4, 6, "c3");  // spans s21+s22 in track 2, or fits s31 in track 3
  cs.add(6, 8, "c4");
  cs.add(7, 9, "c5");
  return cs;
}

SegmentedChannel fig4_channel() {
  // Three tracks over nine columns with staggered switch grids so a net
  // can hop tracks mid-span.
  return SegmentedChannel({
      Track(9, {3, 4, 7}),  // s11 (1,3), s12 (4,4), s13 (5,7), s14 (8,9)
      Track(9, {5, 7}),     // s21 (1,5), s22 (6,7), s23 (8,9)
      Track(9, {4, 5}),     // s31 (1,4), s32 (5,5), s33 (6,9)
  });
}

ConnectionSet fig4_connections() {
  // Reconstructed (by exhaustive search over candidate instances) so that
  // no single-track routing exists while a generalized routing does —
  // exactly the property Fig. 4 illustrates. In the generalized routing,
  // c1 = (1,8) changes tracks twice. Verified by tests and by
  // bench_fig4_generalized.
  ConnectionSet cs;
  cs.add(1, 8, "c1");  // the net that must change tracks
  cs.add(3, 3, "c2");
  cs.add(3, 5, "c3");
  cs.add(4, 5, "c4");
  cs.add(6, 7, "c5");
  cs.add(6, 8, "c6");
  cs.add(8, 9, "c7");
  return cs;
}

SegmentedChannel fig8_channel() {
  return SegmentedChannel({
      Track(9, {4}),  // t1: (1,4)(5,9)
      Track(9, {5}),  // t2: (1,5)(6,9)
      Track(9, {5}),  // t3: (1,5)(6,9)
  });
}

ConnectionSet fig8_connections() {
  ConnectionSet cs;
  cs.add(1, 3, "c1");  // -> t1 (1,4)
  cs.add(2, 6, "c2");  // two segments everywhere -> pooled
  cs.add(4, 5, "c3");  // tie between t2 and t3
  cs.add(6, 9, "c4");  // placed after the pool flush
  return cs;
}

npc::NmtsInstance example1_nmts() {
  return npc::NmtsInstance({2, 5, 8}, {9, 11, 12}, {11, 17, 19});
}

}  // namespace segroute::gen::fixtures
