#include "gen/segmentation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace segroute::gen {

namespace {

Track gridded_track(Column width, Column segment_length, Column offset) {
  std::vector<Column> cuts;
  for (Column c = offset; c < width; c += segment_length) {
    if (c >= 1) cuts.push_back(c);
  }
  return Track(width, std::move(cuts));
}

}  // namespace

SegmentedChannel uniform_segmentation(TrackId tracks, Column width,
                                      Column segment_length) {
  if (segment_length < 1) {
    throw std::invalid_argument("uniform_segmentation: segment_length >= 1");
  }
  std::vector<Track> ts;
  for (TrackId t = 0; t < tracks; ++t) {
    ts.push_back(gridded_track(width, segment_length, segment_length));
  }
  return SegmentedChannel(std::move(ts));
}

SegmentedChannel staggered_segmentation(TrackId tracks, Column width,
                                        Column segment_length) {
  if (segment_length < 1) {
    throw std::invalid_argument("staggered_segmentation: segment_length >= 1");
  }
  if (tracks < 1) {
    throw std::invalid_argument("staggered_segmentation: tracks >= 1");
  }
  std::vector<Track> ts;
  for (TrackId t = 0; t < tracks; ++t) {
    const Column offset = static_cast<Column>(
        segment_length -
        (static_cast<std::int64_t>(t) * segment_length) / tracks);
    ts.push_back(gridded_track(width, segment_length, offset));
  }
  return SegmentedChannel(std::move(ts));
}

SegmentedChannel progressive_segmentation(TrackId tracks, Column width,
                                          Column base_length, int num_types) {
  if (base_length < 1 || num_types < 1) {
    throw std::invalid_argument("progressive_segmentation: bad parameters");
  }
  std::vector<Track> ts;
  for (TrackId t = 0; t < tracks; ++t) {
    const int type = t % num_types;
    const Column len =
        std::min<Column>(width, base_length << std::min(type, 20));
    ts.push_back(gridded_track(width, len, len));
  }
  return SegmentedChannel(std::move(ts));
}

SegmentedChannel design_segmentation(TrackId tracks, Column width,
                                     const std::vector<ConnectionSet>& samples,
                                     double slack) {
  if (tracks < 1 || width < 1 || slack < 1.0) {
    throw std::invalid_argument("design_segmentation: bad parameters");
  }
  std::vector<Column> lengths;
  for (const ConnectionSet& cs : samples) {
    for (const Connection& c : cs.all()) lengths.push_back(c.length());
  }
  if (lengths.empty()) {
    // No data: fall back to a mid-grain staggered grid.
    return staggered_segmentation(tracks, width, std::max<Column>(1, width / 8));
  }
  std::sort(lengths.begin(), lengths.end());
  std::vector<Track> ts;
  for (TrackId t = 0; t < tracks; ++t) {
    // Quantile (t + 0.5) / tracks of the sample length distribution.
    const std::size_t q = std::min(
        lengths.size() - 1,
        static_cast<std::size_t>((static_cast<double>(t) + 0.5) /
                                 static_cast<double>(tracks) *
                                 static_cast<double>(lengths.size())));
    Column len = static_cast<Column>(
        std::ceil(static_cast<double>(lengths[q]) * slack));
    len = std::clamp<Column>(len, 1, width);
    // Stagger tracks sharing a length class.
    const Column offset =
        static_cast<Column>(len - (static_cast<std::int64_t>(t) * len /
                                   std::max<TrackId>(1, tracks)) %
                                      len);
    ts.push_back(gridded_track(width, len, offset));
  }
  return SegmentedChannel(std::move(ts));
}

}  // namespace segroute::gen
