// A frozen, graded suite of named routing instances — a regression
// anchor (every instance's routability and optimal weight are pinned by
// tests) and a starter benchmark set for downstream users, in the spirit
// of classic channel-routing benchmark collections.
#pragma once

#include <string>
#include <vector>

#include "core/channel.h"
#include "core/connection.h"

namespace segroute::gen {

struct SuiteInstance {
  std::string name;
  std::string description;
  SegmentedChannel channel;
  ConnectionSet connections;
  bool routable;          // unlimited-segment ground truth (pinned)
  int min_k;              // smallest K with a K-segment routing; 0 if none
  double optimal_length;  // minimum total occupied length; 0 if unroutable
};

/// The ten instances, smallest to largest. Deterministic: generated from
/// fixed seeds and frozen expectations (tests re-derive every field with
/// the exact routers).
std::vector<SuiteInstance> standard_suite();

/// Lookup by name; throws std::invalid_argument if absent.
SuiteInstance suite_instance(const std::string& name);

}  // namespace segroute::gen
