// Example 1 of the paper, end to end: the Numerical Matching with Target
// Sums instance x = (2,5,8), y = (9,11,12), z = (11,17,19) is turned into
// the segmented-channel instance Q of Section III (9 tracks, 27 columns,
// 30 connections); a routing of Q is found by the DP router; and the
// matching is read back out of the routing (Lemma 2).
//
// Run:  ./build/examples/npc_reduction
#include <iostream>

#include "segroute.h"

using namespace segroute;

int main() {
  const auto inst = gen::fixtures::example1_nmts();
  std::cout << "NMTS instance (Example 1): x = (2,5,8)  y = (9,11,12)  "
               "z = (11,17,19)\n";

  const auto sol = inst.solve();
  std::cout << "Direct solver: " << (sol ? "solvable" : "unsolvable") << "\n";
  if (sol) {
    for (int i = 0; i < inst.n(); ++i) {
      std::cout << "  z[" << i + 1 << "] = " << inst.z()[static_cast<std::size_t>(i)]
                << " = x[" << sol->alpha[static_cast<std::size_t>(i)] + 1
                << "] + y[" << sol->beta[static_cast<std::size_t>(i)] + 1
                << "]\n";
    }
  }

  // Build Q per the Theorem 1 construction.
  const auto q = npc::build_unlimited(inst);
  std::cout << "\nReduction Q: T = " << q.channel.num_tracks()
            << " tracks, N = " << q.channel.width() << " columns, M = "
            << q.connections.size() << " connections\n";

  // Lemma 1: a routing from the matching.
  const auto witness = npc::routing_from_matching(q, inst, *sol);
  std::cout << "Lemma 1 witness routing valid: "
            << (validate(q.channel, q.connections, witness) ? "yes" : "no")
            << "\n";

  // Independently, route Q from scratch with the DP.
  const auto dp = alg::dp_route_unlimited(q.channel, q.connections);
  std::cout << "DP router on Q: " << (dp ? "routed" : "failed")
            << " (max frontiers per level: " << dp.stats.max_level_nodes
            << ")\n";

  // Lemma 2: extract a matching from whatever routing the DP found.
  const auto back = npc::matching_from_routing(q, inst, dp.routing);
  std::cout << "Lemma 2 extraction: "
            << (back && inst.check(*back) ? "valid matching recovered"
                                          : "FAILED")
            << "\n";

  // The no-instance direction: perturb z so no matching exists; the same
  // construction must then be unroutable.
  const npc::NmtsInstance bad({2, 5, 8}, {9, 11, 12}, {12, 16, 19});
  std::cout << "\nPerturbed z = (12,16,19): solver says "
            << (bad.solve() ? "solvable" : "unsolvable") << "\n";
  const auto qbad = npc::build_unlimited(bad);
  const auto dpbad = alg::dp_route_unlimited(qbad.channel, qbad.connections);
  std::cout << "DP router on perturbed Q: "
            << (dpbad ? "routed (unexpected!)" : "no routing, as Theorem 1 "
                                                 "demands")
            << "\n";
  return 0;
}
