// Prints the router registry's capability table (io::Table) — the
// source of the README's router table. Regenerate with:
//   ./build/examples/router_table
#include <iostream>

#include "segroute.h"

int main() {
  std::cout << segroute::alg::capability_table().str();
  return 0;
}
