// Routing as a service: a two-tenant workload through svc::RoutingService.
//
// "interactive" submits small routable instances with no budget (the
// latency-sensitive tenant); "batch" submits larger random instances
// under a 5000-tick slice (the throughput tenant whose NP-hard
// stragglers must not starve anyone). Both run through one shared
// engine + memo cache with a per-tenant in-flight cap, then the demo
// prints per-tenant fairness/latency (io::Table) and the /metrics
// exposition's service lines.
//
//   ./build/examples/svc_demo
#include <algorithm>
#include <future>
#include <iostream>
#include <random>
#include <sstream>
#include <vector>

#include "segroute.h"

using namespace segroute;

int main() {
  const SegmentedChannel ch = gen::staggered_segmentation(8, 64, 8);

  svc::SvcOptions opts;
  opts.threads = 0;  // auto: util::hardware_threads()
  opts.queue_capacity = 256;
  opts.max_inflight_per_tenant = 64;
  opts.tenant_slice_ticks["batch"] = 5000;
  svc::RoutingService service(ch, opts);

  // Two tenants' instance pools.
  std::mt19937_64 rng(7);
  std::vector<ConnectionSet> interactive, batch;
  for (int i = 0; i < 12; ++i) {
    interactive.push_back(gen::routable_workload(ch, 6, 6.0, rng));
    batch.push_back(gen::geometric_workload(12, 64, 8.0, rng));
  }

  // Driver mode: seeded arrivals, tick() advances virtual time. The
  // whole run is deterministic — no wall clock touches any outcome.
  struct Tally {
    std::uint64_t served = 0, ok = 0, exhausted = 0, rejected = 0;
    std::uint64_t queue_ticks = 0;
  };
  std::map<std::string, Tally> tally;
  std::vector<std::future<svc::SvcResponse>> futs;
  std::mt19937_64 arrivals(42);
  for (int t = 0; t < 40; ++t) {
    const int n = static_cast<int>(arrivals() % 6);
    for (int i = 0; i < n; ++i) {
      svc::SvcRequest rq;
      if (arrivals() % 2 == 0) {
        rq.tenant = "interactive";
        rq.connections = interactive[arrivals() % interactive.size()];
      } else {
        rq.tenant = "batch";
        rq.connections = batch[arrivals() % batch.size()];
      }
      futs.push_back(service.submit(std::move(rq)));
    }
    service.tick();
  }
  service.stop(svc::RoutingService::StopMode::kDrain);

  for (auto& f : futs) {
    const svc::SvcResponse r = f.get();
    Tally& ty = tally[r.tenant];
    if (r.admit != svc::Admit::kAccepted) {
      ++ty.rejected;  // typed: r.result.failure == kBudgetExhausted
      continue;
    }
    ++ty.served;
    ty.queue_ticks += r.queue_ticks();
    if (r.result.success) ++ty.ok;
    if (r.result.failure == alg::FailureKind::kBudgetExhausted) ++ty.exhausted;
  }

  io::Table table({"tenant", "served", "routed", "slice-exhausted", "rejected",
                   "avg queue ticks"});
  for (const auto& [tenant, ty] : tally) {
    table.add_row({tenant, std::to_string(ty.served), std::to_string(ty.ok),
                   std::to_string(ty.exhausted), std::to_string(ty.rejected),
                   io::Table::num(ty.served ? static_cast<double>(ty.queue_ticks) /
                                                  static_cast<double>(ty.served)
                                            : 0.0,
                                  2)});
  }
  std::cout << "two-tenant service run (" << futs.size() << " requests, "
            << service.stats().ticks << " ticks)\n";
  table.print(std::cout);

  const engine::CacheStats cache = service.engine().cache_stats();
  std::cout << "\nshared cache: " << cache.hits << " hits / " << cache.misses
            << " misses (" << cache.size << " entries)\n";

  // What a Prometheus scrape of svc/http.h's /metrics endpoint returns —
  // the service's slice of it.
  std::cout << "\n/metrics (svc lines):\n";
  std::istringstream exp(obs::Registry::instance().prometheus_text());
  for (std::string line; std::getline(exp, line);) {
    if (line.find("segroute_svc_") != std::string::npos &&
        line.find("shard") == std::string::npos) {
      std::cout << "  " << line << "\n";
    }
  }
  return 0;
}
