// Incremental design editing: the OnlineRouter inserting, removing and
// rerouting connections the way an interactive FPGA tool does, with an
// SVG snapshot of the final state written next to the binary.
//
// Run:  ./build/examples/incremental_edit  [output.svg]
#include <fstream>
#include <iostream>
#include <random>

#include "segroute.h"

using namespace segroute;

int main(int argc, char** argv) {
  const auto channel = gen::staggered_segmentation(5, 32, 8);
  alg::OnlineRouter router(channel);

  std::cout << "Channel: 5 staggered tracks, 32 columns\n\n";

  // A design session: place a first batch of nets.
  std::mt19937_64 rng(7);
  std::vector<ConnId> live;
  for (int i = 0; i < 10; ++i) {
    const Column l = 1 + static_cast<Column>(rng() % 28);
    const Column r = std::min<Column>(32, l + 2 + static_cast<Column>(rng() % 8));
    std::string name = "n";
    name += std::to_string(i);
    if (auto id = router.insert_with_ripup(l, r, name)) {
      live.push_back(*id);
      std::cout << "insert n" << i << " [" << l << "," << r << "] -> t"
                << router.track_of(*id) + 1 << "\n";
    } else {
      std::cout << "insert n" << i << " [" << l << "," << r << "] -> DROPPED\n";
    }
  }

  // An engineering change order: delete a few nets, add replacements.
  std::cout << "\nECO: removing 3 nets, adding 3 longer ones\n";
  for (int k = 0; k < 3 && !live.empty(); ++k) {
    router.remove(live.back());
    live.pop_back();
  }
  for (int i = 0; i < 3; ++i) {
    const Column l = 1 + static_cast<Column>(rng() % 16);
    const Column r = std::min<Column>(32, l + 10 + static_cast<Column>(rng() % 6));
    std::string name = "eco";
    name += std::to_string(i);
    if (auto id = router.insert_with_ripup(l, r, name)) {
      live.push_back(*id);
      std::cout << "insert eco" << i << " [" << l << "," << r << "] -> t"
                << router.track_of(*id) + 1 << "\n";
    }
  }

  // Clean-up pass: let every net look for a snugger home.
  std::cout << "\nReroute pass:\n";
  for (ConnId id : live) {
    const TrackId before = router.track_of(id);
    const TrackId after = router.reroute(id);
    if (before != after) {
      std::cout << "  " << router.connection(id).name << ": t" << before + 1
                << " -> t" << after + 1 << "\n";
    }
  }

  const auto [cs, routing] = router.snapshot();
  const auto verdict = validate(channel, cs, routing);
  std::cout << "\nFinal state: " << cs.size() << " nets, valid = "
            << (verdict ? "yes" : verdict.error) << "\n"
            << io::render(channel, cs, routing);

  const auto stats = utilization(channel, cs, routing);
  std::cout << "wire utilization " << io::Table::num(100 * stats.wire_utilization(), 1)
            << "%, overhang " << io::Table::num(stats.overhang(), 2) << "x\n";

  const std::string path = argc > 1 ? argv[1] : "incremental_edit.svg";
  std::ofstream(path) << io::to_svg(channel, cs, &routing);
  std::cout << "SVG written to " << path << "\n";
  return 0;
}
