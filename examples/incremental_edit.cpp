// Incremental design editing: the OnlineRouter inserting, removing and
// rerouting connections the way an interactive FPGA tool does, then an
// ECO applied through the ChannelEdit delta contract — every edit
// returns a proof-carrying RepairOutcome saying whether the localized
// repair or the full-DP fallback ran, and the final state is verified
// bit-identical to routing the same set from scratch.
//
// Run:  ./build/examples/incremental_edit  [--out output.svg]
// The SVG snapshot defaults to incremental_edit.svg next to the binary
// (never the source tree).
#include <fstream>
#include <iostream>
#include <random>
#include <string>

#include "segroute.h"

using namespace segroute;

int main(int argc, char** argv) {
  std::string out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--out output.svg]\n";
      return 2;
    }
  }
  if (out.empty()) {
    out = argv[0];
    const std::size_t slash = out.find_last_of('/');
    out = (slash == std::string::npos ? std::string(".")
                                      : out.substr(0, slash)) +
          "/incremental_edit.svg";
  }

  const auto channel = gen::staggered_segmentation(5, 32, 8);
  alg::OnlineRouter router(channel);

  std::cout << "Channel: 5 staggered tracks, 32 columns\n\n";

  // A design session: place a first batch of nets.
  std::mt19937_64 rng(7);
  std::vector<ConnId> live;
  for (int i = 0; i < 10; ++i) {
    const Column l = 1 + static_cast<Column>(rng() % 28);
    const Column r = std::min<Column>(32, l + 2 + static_cast<Column>(rng() % 8));
    std::string name = "n";
    name += std::to_string(i);
    if (auto id = router.insert_with_ripup(l, r, name)) {
      live.push_back(*id);
      std::cout << "insert n" << i << " [" << l << "," << r << "] -> t"
                << router.track_of(*id) + 1 << "\n";
    } else {
      std::cout << "insert n" << i << " [" << l << "," << r << "] -> DROPPED\n";
    }
  }

  // An engineering change order through the delta contract: each edit is
  // one ChannelEdit, and the RepairOutcome receipt reports which path
  // ran and the column window the repair re-evaluated.
  std::cout << "\nECO: removing 3 nets, adding 3 longer ones (delta API)\n";
  for (int k = 0; k < 3 && !live.empty(); ++k) {
    const ConnId victim = live.back();
    const alg::RepairOutcome rc = router.apply(alg::ChannelEdit::remove(victim));
    std::cout << "  remove #" << victim << " -> " << alg::to_string(rc.path)
              << ", window [" << rc.affected_lo << "," << rc.affected_hi
              << "], reconsidered " << rc.reconsidered << "\n";
    live.pop_back();
  }
  for (int i = 0; i < 3; ++i) {
    const Column l = 1 + static_cast<Column>(rng() % 16);
    const Column r = std::min<Column>(32, l + 10 + static_cast<Column>(rng() % 6));
    std::string name = "eco";
    name += std::to_string(i);
    const alg::RepairOutcome rc =
        router.apply(alg::ChannelEdit::add(l, r, name));
    if (rc.success) {
      live.push_back(rc.id);
      std::cout << "  add " << name << " [" << l << "," << r << "] -> t"
                << router.track_of(rc.id) + 1 << " via "
                << alg::to_string(rc.path) << "\n";
    } else {
      std::cout << "  add " << name << " [" << l << "," << r
                << "] -> REJECTED (state rolled back)\n";
    }
  }

  // Clean-up pass: let every net look for a snugger home.
  std::cout << "\nReroute pass:\n";
  for (ConnId id : live) {
    const TrackId before = router.track_of(id);
    const TrackId after = router.reroute(id);
    if (before != after) {
      std::cout << "  " << router.connection(id).name << ": t" << before + 1
                << " -> t" << after + 1 << "\n";
    }
  }

  const auto [cs, routing] = router.snapshot();
  const auto verdict = validate(channel, cs, routing);
  std::cout << "\nFinal state: " << cs.size() << " nets, valid = "
            << (verdict ? "yes" : verdict.error) << "\n"
            << io::render(channel, cs, routing);

  // The session invariant the whole delta layer rests on: the edited
  // state is bit-identical to routing the same set from scratch.
  const alg::CanonicalResult canon = alg::from_scratch(channel, cs, true, 0);
  std::cout << "canonical check: "
            << (canon.result.success && canon.result.routing == routing
                    ? "session == from-scratch (bit-identical)\n"
                    : "MISMATCH\n");

  const auto stats = utilization(channel, cs, routing);
  std::cout << "wire utilization " << io::Table::num(100 * stats.wire_utilization(), 1)
            << "%, overhang " << io::Table::num(stats.overhang(), 2) << "x\n";

  std::ofstream(out) << io::to_svg(channel, cs, &routing);
  std::cout << "SVG written to " << out << "\n";
  return 0;
}
