// A complete channeled-FPGA flow on the Fig. 1 architecture: random
// logical netlist -> simulated-annealing placement -> congestion-aware
// global routing into channels -> segmented channel routing per channel
// -> Elmore delay report. Shows how the paper's channel router slots into
// a real FPGA CAD stack.
//
// Run:  ./build/examples/fpga_flow
#include <iostream>
#include <random>

#include "segroute.h"

using namespace segroute;

int main() {
  std::mt19937_64 rng(77);

  fpga::DeviceSpec dev;
  dev.rows = 4;
  dev.slots_per_row = 16;
  dev.cell_width = 3;

  const auto netlist = fpga::random_netlist(/*num_cells=*/64, /*num_nets=*/56,
                                            /*max_fanout=*/4,
                                            /*locality_window=*/10, rng);
  std::cout << "Device: " << dev.rows << " rows x " << dev.slots_per_row
            << " cells, " << dev.num_channels() << " channels of "
            << dev.columns() << " columns\n"
            << "Netlist: " << netlist.num_cells() << " cells, "
            << netlist.num_nets() << " nets\n\n";

  // Placement: random start, annealed.
  const auto start = fpga::random_placement(netlist, dev.rows,
                                            dev.slots_per_row, rng);
  fpga::AnnealOptions anneal;
  anneal.iterations = 60000;
  const auto placed = fpga::anneal_placement(netlist, start, rng, anneal);
  std::cout << "Placement HPWL: random = " << fpga::hpwl(netlist, start, 2.0)
            << ", annealed = " << fpga::hpwl(netlist, placed, 2.0) << "\n\n";

  // Global routing, then channel-by-channel segmented routing for both
  // placements to show how placement quality feeds the channel router.
  io::Table t({"placement", "channel", "nets", "density", "tracks used",
               "max delay"});
  for (const auto& [label, p] :
       std::vector<std::pair<std::string, const fpga::Placement*>>{
           {"random", &start}, {"annealed", &placed}}) {
    const auto gr = fpga::global_route(dev, netlist, *p);
    const auto reports = fpga::route_device(
        dev, gr,
        [](int tracks, Column width) {
          return gen::staggered_segmentation(tracks, width,
                                             std::max<Column>(2, width / 6));
        },
        64);
    for (const auto& rep : reports) {
      t.add_row({label, io::Table::num(rep.channel),
                 io::Table::num(rep.connections), io::Table::num(rep.density),
                 rep.tracks_used < 0 ? "FAIL" : io::Table::num(rep.tracks_used),
                 rep.connections ? io::Table::num(rep.delay.max_delay, 1)
                                 : "-"});
    }
  }
  std::cout << t.str()
            << "\nBetter placement -> lower channel densities -> fewer "
               "tracks for the segmented channel router.\n";
  return 0;
}
