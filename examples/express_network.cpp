// Segmented channels as a multiprocessor interconnect (the paper's
// concluding remark, after Dally's express channels): 32 processing
// elements on a channel, three channel organizations, three traffic
// patterns — watch the Section-I trade-off reappear as network latency.
//
// Run:  ./build/examples/express_network
#include <iostream>
#include <random>

#include "segroute.h"
#include "net/express.h"

using namespace segroute;
using namespace segroute::net;

int main() {
  const int pes = 32;
  const int tracks = 6;
  std::mt19937_64 rng(3);

  std::cout << "A linear array of " << pes << " PEs over a " << tracks
            << "-track segmented channel.\n\n";

  const auto express = express_channel(tracks, pes, 8);
  std::cout << "Express organization (alternating local / express lanes):\n"
            << io::render(express) << "\n";

  // One long-haul message, hop by hop.
  const std::vector<Message> one = {Message{2, 29}};
  for (const auto& [name, ch] :
       std::vector<std::pair<std::string, SegmentedChannel>>{
           {"local", local_channel(tracks, pes)},
           {"bus", bus_channel(tracks, pes)},
           {"express", express}}) {
    const auto rep = offer_traffic(ch, one);
    std::cout << name << ": PE2 -> PE29 latency "
              << io::Table::num(rep.mean_latency, 1) << " ("
              << io::Table::num(rep.mean_switches, 0)
              << " programmed switches)\n";
  }

  // A batch of mixed traffic.
  auto msgs = uniform_traffic(pes, 10, rng);
  const auto local_batch = neighbor_traffic(pes, 6, rng);
  msgs.insert(msgs.end(), local_batch.begin(), local_batch.end());
  std::cout << "\nMixed batch (" << msgs.size() << " messages):\n";
  io::Table t({"organization", "delivered", "mean latency", "max latency"});
  for (const auto& [name, ch] :
       std::vector<std::pair<std::string, SegmentedChannel>>{
           {"local", local_channel(tracks, pes)},
           {"bus", bus_channel(tracks, pes)},
           {"express", express}}) {
    const auto rep = offer_traffic(ch, msgs);
    t.add_row({name,
               io::Table::num(rep.delivered) + "/" + io::Table::num(rep.offered),
               io::Table::num(rep.mean_latency, 1),
               io::Table::num(rep.max_latency, 1)});
  }
  std::cout << t.str()
            << "\nThe express organization keeps the local channel's "
               "capacity while cutting long-haul latency — the same "
               "trade-off the paper's Fig. 2 makes for FPGA wiring.\n";
  return 0;
}
