// The paper's running example (Fig. 3): a 3-track, 9-column segmented
// channel and five connections, routed by every algorithm the paper
// develops for it — the 1-segment greedy (Theorem 3), the bipartite
// matching formulation (Fig. 7), the LP heuristic (Section IV-C), and the
// general assignment-graph DP (Section IV-B).
//
// Run:  ./build/examples/fig3_walkthrough
#include <iostream>

#include "segroute.h"

using namespace segroute;

int main() {
  const auto channel = gen::fixtures::fig3_channel();
  const auto nets = gen::fixtures::fig3_connections();

  std::cout << "Fig. 3 channel (segments s11..s13 / s21..s23 / s31, s32):\n"
            << io::render(channel) << "\n"
            << "Connections c1..c5:\n"
            << io::render(nets, channel.width()) << "\n";

  // 1-segment greedy (Theorem 3): exact for K = 1.
  alg::Greedy1Trace trace;
  const auto greedy = alg::greedy1_route_traced(channel, nets, &trace);
  std::cout << "1-segment greedy (Theorem 3): "
            << (greedy ? "routed" : greedy.note) << "\n";
  for (ConnId i = 0; i < nets.size(); ++i) {
    std::cout << "  " << nets[i].name << " -> s"
              << (greedy.routing.track_of(i) + 1)
              << (trace.segment_of[static_cast<std::size_t>(i)] + 1) << "\n";
  }
  std::cout << io::render(channel, nets, greedy.routing) << "\n";

  // Optimal 1-segment routing via weighted bipartite matching (Fig. 7).
  const auto matched =
      alg::match1_route_optimal(channel, nets, weights::occupied_length());
  std::cout << "Min-weight matching (Fig. 7): total occupied length = "
            << matched.weight << "\n";

  // The general DP router; also report assignment-graph statistics.
  const auto dp = alg::dp_route_unlimited(channel, nets);
  std::cout << "Assignment-graph DP: " << (dp ? "routed" : dp.note)
            << "; nodes per level:";
  for (std::size_t n : dp.stats.nodes_per_level) std::cout << ' ' << n;
  std::cout << "\n";

  // The LP heuristic.
  const auto lp = alg::lp_route(channel, nets);
  std::cout << "LP heuristic: " << (lp ? "routed" : lp.note)
            << " (relaxation objective " << lp.stats.lp_objective
            << ", integral=" << (lp.stats.lp_integral ? "yes" : "no")
            << ")\n";
  return 0;
}
