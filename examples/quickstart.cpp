// Quickstart: build a segmented channel, route a handful of connections
// with the assignment-graph DP router, and print the result.
//
// Run:  ./build/examples/quickstart
#include <iostream>

#include "segroute.h"

using namespace segroute;

int main() {
  // A channel of four tracks over 16 columns. Tracks 1-2 are cut every
  // four columns; tracks 3-4 every eight. (Fig. 2(e)/(f) spirit: short
  // segments for short nets, long segments for long nets.)
  const SegmentedChannel channel({
      Track(16, {4, 8, 12}),
      Track(16, {4, 8, 12}),
      Track(16, {8}),
      Track(16, {8}),
  });

  // Six two-terminal connections (columns are 1-based, ends inclusive).
  ConnectionSet nets;
  nets.add(1, 4, "n1");
  nets.add(2, 7, "n2");
  nets.add(5, 8, "n3");
  nets.add(6, 14, "n4");
  nets.add(9, 12, "n5");
  nets.add(13, 16, "n6");

  std::cout << "Connections:\n" << io::render(nets, channel.width()) << "\n";
  std::cout << "Channel:\n" << io::render(channel) << "\n";

  // Problem 1: any routing.
  const auto any = alg::dp_route_unlimited(channel, nets);
  if (!any) {
    std::cout << "No routing exists: " << any.note << "\n";
    return 1;
  }
  std::cout << "A routing (Problem 1):\n"
            << io::render(channel, nets, any.routing) << "\n";

  // Problem 2: at most two segments per connection.
  const auto two_seg = alg::dp_route_ksegment(channel, nets, 2);
  std::cout << "2-segment routing exists? " << (two_seg ? "yes" : "no")
            << "\n";

  // Problem 3: minimize total occupied wire length.
  const auto optimal =
      alg::dp_route_optimal(channel, nets, weights::occupied_length());
  std::cout << "Minimum total occupied length: " << optimal.weight << "\n"
            << io::render(channel, nets, optimal.routing);

  // Always re-check a routing before using it downstream.
  const auto verdict = validate(channel, nets, optimal.routing);
  std::cout << "validated: " << (verdict ? "ok" : verdict.error) << "\n";
  return 0;
}
