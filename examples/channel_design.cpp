// Designing a segmented channel for a workload — the engineering loop the
// paper's introduction motivates (and its companion papers [10], [11]
// study): sample the net-length distribution, choose a segmentation, and
// measure how many extra tracks the segmented channel needs over the
// freely-customized (conventional) channel.
//
// Run:  ./build/examples/channel_design
#include <iostream>
#include <random>

#include "segroute.h"

using namespace segroute;

namespace {

/// Smallest T such that `make(T)` routes `nets`, found by linear scan.
template <typename MakeChannel>
int min_tracks(const ConnectionSet& nets, int limit, MakeChannel make) {
  for (int t = std::max(1, nets.density()); t <= limit; ++t) {
    if (alg::dp_route_unlimited(make(t), nets).success) return t;
  }
  return -1;
}

}  // namespace

int main() {
  std::mt19937_64 rng(2026);
  const Column width = 48;

  // Sample workloads drawn from the stochastic model of [9]: geometric
  // net lengths with mean 6.
  std::vector<ConnectionSet> samples;
  for (int s = 0; s < 8; ++s) {
    samples.push_back(gen::geometric_workload(24, width, 6.0, rng));
  }

  // The workload we actually have to route.
  const auto nets = gen::geometric_workload(24, width, 6.0, rng);
  std::cout << "Workload: M = " << nets.size()
            << ", density = " << nets.density() << "\n\n";

  io::Table table({"segmentation", "tracks needed", "extra over density"});
  const int density = nets.density();
  const int limit = 4 * density + 8;

  const int uniform = min_tracks(nets, limit, [&](int t) {
    return gen::uniform_segmentation(t, width, 8);
  });
  table.add_row({"uniform len 8", io::Table::num(uniform),
                 io::Table::num(uniform - density)});

  const int staggered = min_tracks(nets, limit, [&](int t) {
    return gen::staggered_segmentation(t, width, 8);
  });
  table.add_row({"staggered len 8", io::Table::num(staggered),
                 io::Table::num(staggered - density)});

  const int designed = min_tracks(nets, limit, [&](int t) {
    return gen::design_segmentation(t, width, samples);
  });
  table.add_row({"designed (quantile)", io::Table::num(designed),
                 io::Table::num(designed - density)});

  const int unsegmented = min_tracks(nets, static_cast<int>(nets.size()),
                                     [&](int t) {
    return SegmentedChannel::unsegmented(t, width);
  });
  table.add_row({"unsegmented (Fig 2d)", io::Table::num(unsegmented),
                 io::Table::num(unsegmented - density)});

  table.add_row({"freely customized (Fig 2b)", io::Table::num(density),
                 io::Table::num(0)});

  std::cout << table.str()
            << "\nA well-designed segmented channel needs only a few tracks "
               "more than the freely customized one ([10], [11]).\n";
  return 0;
}
